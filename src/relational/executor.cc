#include "src/relational/executor.h"

#include <algorithm>
#include <utility>

#include "src/relational/key_codec.h"
#include "src/relational/query_control.h"

namespace oxml {

bool OrderSatisfies(const std::vector<OrderKey>& have,
                    const std::vector<OrderKey>& want) {
  if (want.size() > have.size()) return false;
  for (size_t i = 0; i < want.size(); ++i) {
    if (!(have[i] == want[i])) return false;
  }
  return true;
}

void Operator::Describe(int indent, std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(Name());
  if (!order_.empty()) {
    out->append(" [order:");
    for (size_t i = 0; i < order_.size(); ++i) {
      out->append(i == 0 ? " " : ", ");
      int c = order_[i].column;
      if (c >= 0 && static_cast<size_t>(c) < schema_.size()) {
        out->append(schema_.column(c).name);
      } else {
        out->append("#" + std::to_string(c));
      }
      if (order_[i].desc) out->append(" DESC");
    }
    out->push_back(']');
  }
  out->push_back('\n');
}

bool CoerceForColumn(TypeId column_type, Value* v) {
  if (v->type() == column_type) return true;
  if (column_type == TypeId::kDouble && v->type() == TypeId::kInt) {
    *v = Value::Double(v->AsDouble());
    return true;
  }
  if (column_type == TypeId::kText && v->type() == TypeId::kBlob) {
    *v = Value::Text(v->AsString());
    return true;
  }
  if (column_type == TypeId::kBlob && v->type() == TypeId::kText) {
    *v = Value::Blob(v->AsString());
    return true;
  }
  return false;
}

Result<ResolvedIndexBounds> ResolveIndexBounds(const DynamicIndexBounds& b) {
  static const Row kEmptyRow;
  ResolvedIndexBounds out;
  auto eval = [&](const DynamicIndexBounds::Term& term) -> Result<Value> {
    OXML_ASSIGN_OR_RETURN(Value v, term.expr->Eval(kEmptyRow));
    if (v.is_null()) return v;
    if (!CoerceForColumn(term.column_type, &v)) {
      return Status::InvalidArgument(
          "bound parameter of type " + std::string(TypeIdToString(v.type())) +
          " cannot probe a " + TypeIdToString(term.column_type) +
          " index column");
    }
    return v;
  };

  std::vector<Value> eq_values;
  eq_values.reserve(b.eq.size());
  for (const auto& term : b.eq) {
    OXML_ASSIGN_OR_RETURN(Value v, eval(term));
    if (v.is_null()) {
      out.usable = false;
      return out;
    }
    eq_values.push_back(std::move(v));
  }
  std::string prefix = EncodeKey(eq_values);

  if (b.lower.has_value()) {
    OXML_ASSIGN_OR_RETURN(Value v, eval(*b.lower));
    if (v.is_null()) {
      out.usable = false;
      return out;
    }
    std::string k = prefix;
    EncodeKeyValue(v, &k);
    out.lower = b.lower_inclusive ? k : KeySuccessor(k);
  } else if (!eq_values.empty()) {
    out.lower = prefix;
  }
  if (b.upper.has_value()) {
    OXML_ASSIGN_OR_RETURN(Value v, eval(*b.upper));
    if (v.is_null()) {
      out.usable = false;
      return out;
    }
    std::string k = prefix;
    EncodeKeyValue(v, &k);
    out.upper = b.upper_inclusive ? KeySuccessor(k) : k;
  } else if (!eq_values.empty()) {
    out.upper = KeySuccessor(prefix);
  }
  return out;
}

// ------------------------------------------------------------------ SeqScan

SeqScanOp::SeqScanOp(TableInfo* table, Schema qualified_schema,
                     ExecStats* stats)
    : table_(table), stats_(stats) {
  schema_ = std::move(qualified_schema);
}

Status SeqScanOp::Open() {
  it_.emplace(table_->heap()->Scan());
  return Status::OK();
}

Result<bool> SeqScanOp::Next(Row* row) {
  // Every pipeline bottoms out in a scan, so the leaf check point gives
  // all Next() chains deadline/cancel coverage (amortized, see Check()).
  OXML_RETURN_NOT_OK(CheckCurrentControl());
  Rid rid;
  OXML_ASSIGN_OR_RETURN(bool has, it_->Next(&rid, row));
  if (has && stats_ != nullptr) ++stats_->rows_scanned;
  return has;
}

std::string SeqScanOp::Name() const {
  return "SeqScan(" + table_->name() + ")";
}

// ---------------------------------------------------------------- IndexScan

namespace {

/// The order an index scan emits: the index-column suffix past the pinned
/// equality prefix. Index column positions refer to the table schema, which
/// coincides positionally with the qualified scan schema.
std::vector<OrderKey> IndexScanOrder(const TableIndex& index,
                                     size_t eq_prefix) {
  std::vector<OrderKey> order;
  for (size_t k = eq_prefix; k < index.column_indices.size(); ++k) {
    order.push_back({index.column_indices[k], false});
  }
  return order;
}

}  // namespace

IndexScanOp::IndexScanOp(TableInfo* table, TableIndex* index,
                         Schema qualified_schema,
                         std::optional<std::string> lower,
                         std::optional<std::string> upper, size_t eq_prefix,
                         ExecStats* stats)
    : table_(table),
      index_(index),
      lower_(std::move(lower)),
      upper_(std::move(upper)),
      stats_(stats) {
  schema_ = std::move(qualified_schema);
  order_ = IndexScanOrder(*index, eq_prefix);
}

IndexScanOp::IndexScanOp(TableInfo* table, TableIndex* index,
                         Schema qualified_schema, DynamicIndexBounds dynamic,
                         ExecStats* stats)
    : table_(table),
      index_(index),
      dynamic_(std::move(dynamic)),
      stats_(stats) {
  schema_ = std::move(qualified_schema);
  // Dynamic plans keep bound conjuncts in the residual filter, so the order
  // claim past the eq prefix survives even a NULL binding (the filter then
  // drops every row, or restores the single-prefix-value invariant).
  order_ = IndexScanOrder(*index, dynamic_->eq.size());
}

Status IndexScanOp::Open() {
  if (dynamic_.has_value()) {
    OXML_ASSIGN_OR_RETURN(ResolvedIndexBounds bounds,
                          ResolveIndexBounds(*dynamic_));
    if (bounds.usable) {
      lower_ = std::move(bounds.lower);
      upper_ = std::move(bounds.upper);
    } else {
      // A NULL binding: scan unbounded, the residual filter decides.
      lower_.reset();
      upper_.reset();
    }
  }
  if (stats_ != nullptr) ++stats_->index_probes;
  it_ = lower_.has_value() ? index_->ScanFrom(*lower_) : index_->ScanBegin();
  return Status::OK();
}

Result<bool> IndexScanOp::Next(Row* row) {
  OXML_RETURN_NOT_OK(CheckCurrentControl());
  if (!it_.valid()) return false;
  if (upper_.has_value() && it_.key() >= *upper_) return false;
  OXML_ASSIGN_OR_RETURN(*row, table_->heap()->Get(it_.rid()));
  it_.Next();
  if (stats_ != nullptr) ++stats_->rows_scanned;
  return true;
}

std::string IndexScanOp::Name() const {
  std::string range = dynamic_.has_value() ? " dynamic"
                      : lower_.has_value() || upper_.has_value() ? " range"
                                                                 : " full";
  return "IndexScan(" + table_->name() + "." + index_->name + range + ")";
}

// ------------------------------------------------------------------- Filter

FilterOp::FilterOp(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  schema_ = child_->schema();
  order_ = child_->output_order();
}

Status FilterOp::Open() { return child_->Open(); }

Result<bool> FilterOp::Next(Row* row) {
  while (true) {
    OXML_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    OXML_ASSIGN_OR_RETURN(Value v, predicate_->Eval(*row));
    if (!v.is_null() && v.IsTruthy()) return true;
  }
}

std::string FilterOp::Name() const {
  return "Filter(" + predicate_->ToString() + ")";
}

void FilterOp::Describe(int indent, std::string* out) const {
  Operator::Describe(indent, out);
  child_->Describe(indent + 1, out);
}

// ------------------------------------------------------------------ Project

ProjectOp::ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
                     Schema out_schema)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  schema_ = std::move(out_schema);
  // The child's order survives projection for the prefix of order columns
  // that are still present in the output.
  for (const OrderKey& k : child_->output_order()) {
    int mapped = -1;
    for (size_t j = 0; j < exprs_.size(); ++j) {
      if (exprs_[j]->kind() == Expr::Kind::kColumn &&
          static_cast<const ColumnExpr*>(exprs_[j].get())->index() ==
              k.column) {
        mapped = static_cast<int>(j);
        break;
      }
    }
    if (mapped < 0) break;
    order_.push_back({mapped, k.desc});
  }
}

Status ProjectOp::Open() { return child_->Open(); }

Result<bool> ProjectOp::Next(Row* row) {
  Row in;
  OXML_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
  if (!has) return false;
  row->clear();
  row->reserve(exprs_.size());
  for (const auto& e : exprs_) {
    OXML_ASSIGN_OR_RETURN(Value v, e->Eval(in));
    row->push_back(std::move(v));
  }
  return true;
}

std::string ProjectOp::Name() const {
  std::string cols;
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) cols += ", ";
    cols += exprs_[i]->ToString();
  }
  return "Project(" + cols + ")";
}

void ProjectOp::Describe(int indent, std::string* out) const {
  Operator::Describe(indent, out);
  child_->Describe(indent + 1, out);
}

// --------------------------------------------------------- NestedLoopJoin

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   ExprPtr predicate, ExecStats* stats)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)),
      stats_(stats) {
  schema_ = left_->schema();
  schema_.Append(right_->schema());
  order_ = left_->output_order();  // left-major iteration
}

Status NestedLoopJoinOp::Open() {
  if (stats_ != nullptr) ++stats_->joins_nested_loop;
  OXML_RETURN_NOT_OK(left_->Open());
  OXML_RETURN_NOT_OK(right_->Open());
  right_rows_.clear();
  BudgetCharger budget;
  Row row;
  while (true) {
    OXML_ASSIGN_OR_RETURN(bool has, right_->Next(&row));
    if (!has) break;
    OXML_RETURN_NOT_OK(budget.AddRow(row));
    right_rows_.push_back(std::move(row));
  }
  right_->Close();
  have_left_ = false;
  right_pos_ = 0;
  return Status::OK();
}

Result<bool> NestedLoopJoinOp::Next(Row* row) {
  while (true) {
    if (!have_left_) {
      OXML_ASSIGN_OR_RETURN(bool has, left_->Next(&left_row_));
      if (!has) return false;
      have_left_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& r = right_rows_[right_pos_++];
      *row = left_row_;
      row->insert(row->end(), r.begin(), r.end());
      if (predicate_ == nullptr) return true;
      OXML_ASSIGN_OR_RETURN(Value v, predicate_->Eval(*row));
      if (!v.is_null() && v.IsTruthy()) return true;
    }
    have_left_ = false;
  }
}

void NestedLoopJoinOp::Close() {
  left_->Close();
  right_rows_.clear();
}

std::string NestedLoopJoinOp::Name() const {
  return "NestedLoopJoin(" +
         (predicate_ != nullptr ? predicate_->ToString() : "cross") + ")";
}

void NestedLoopJoinOp::Describe(int indent, std::string* out) const {
  Operator::Describe(indent, out);
  left_->Describe(indent + 1, out);
  right_->Describe(indent + 1, out);
}

// --------------------------------------------------------------- HashJoin

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right,
                       std::vector<ExprPtr> left_keys,
                       std::vector<ExprPtr> right_keys, ExecStats* stats)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      stats_(stats) {
  schema_ = left_->schema();
  schema_.Append(right_->schema());
  order_ = left_->output_order();  // probes stream in left order
}

namespace {

/// Encodes join-key expressions; yields an empty optional when any key
/// value is NULL (SQL: NULL never equi-joins, not even with NULL).
Result<std::optional<std::string>> EvalKey(const std::vector<ExprPtr>& exprs,
                                           const Row& row) {
  std::vector<Value> vals;
  vals.reserve(exprs.size());
  for (const auto& e : exprs) {
    OXML_ASSIGN_OR_RETURN(Value v, e->Eval(row));
    if (v.is_null()) return std::optional<std::string>();
    vals.push_back(std::move(v));
  }
  return std::optional<std::string>(EncodeKey(vals));
}

}  // namespace

Status HashJoinOp::Open() {
  if (stats_ != nullptr) ++stats_->joins_hash;
  OXML_RETURN_NOT_OK(left_->Open());
  OXML_RETURN_NOT_OK(right_->Open());
  hash_.clear();
  BudgetCharger budget;
  Row row;
  while (true) {
    OXML_ASSIGN_OR_RETURN(bool has, right_->Next(&row));
    if (!has) break;
    OXML_ASSIGN_OR_RETURN(std::optional<std::string> key,
                          EvalKey(right_keys_, row));
    if (key.has_value()) {
      OXML_RETURN_NOT_OK(budget.Add(EstimateRowBytes(row) + key->size()));
      hash_.emplace(std::move(*key), std::move(row));
    }
  }
  right_->Close();
  have_left_ = false;
  return Status::OK();
}

Result<bool> HashJoinOp::Next(Row* row) {
  while (true) {
    if (!have_left_) {
      OXML_ASSIGN_OR_RETURN(bool has, left_->Next(&left_row_));
      if (!has) return false;
      OXML_ASSIGN_OR_RETURN(std::optional<std::string> key,
                            EvalKey(left_keys_, left_row_));
      if (!key.has_value()) continue;  // NULL key never joins
      matches_ = hash_.equal_range(*key);
      have_left_ = true;
    }
    if (matches_.first != matches_.second) {
      *row = left_row_;
      const Row& r = matches_.first->second;
      row->insert(row->end(), r.begin(), r.end());
      ++matches_.first;
      return true;
    }
    have_left_ = false;
  }
}

void HashJoinOp::Close() {
  left_->Close();
  hash_.clear();
}

std::string HashJoinOp::Name() const {
  std::string keys;
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) keys += ", ";
    keys += left_keys_[i]->ToString() + "=" + right_keys_[i]->ToString();
  }
  return "HashJoin(" + keys + ")";
}

void HashJoinOp::Describe(int indent, std::string* out) const {
  Operator::Describe(indent, out);
  left_->Describe(indent + 1, out);
  right_->Describe(indent + 1, out);
}

// ----------------------------------------------------- IndexNestedLoopJoin

IndexNestedLoopJoinOp::IndexNestedLoopJoinOp(OperatorPtr outer,
                                             TableInfo* inner,
                                             TableIndex* index,
                                             Schema inner_schema,
                                             std::vector<ExprPtr> outer_keys,
                                             ExecStats* stats)
    : outer_(std::move(outer)),
      inner_(inner),
      index_(index),
      inner_schema_(std::move(inner_schema)),
      outer_keys_(std::move(outer_keys)),
      stats_(stats) {
  schema_ = outer_->schema();
  schema_.Append(inner_schema_);
  // Only the outer order survives: equal-outer-key runs restart the inner
  // index sequence, so inner columns cannot extend the order claim.
  order_ = outer_->output_order();
}

Status IndexNestedLoopJoinOp::Open() {
  if (stats_ != nullptr) ++stats_->joins_index_nested_loop;
  have_outer_ = false;
  return outer_->Open();
}

Result<bool> IndexNestedLoopJoinOp::Next(Row* row) {
  while (true) {
    if (!have_outer_) {
      OXML_ASSIGN_OR_RETURN(bool has, outer_->Next(&outer_row_));
      if (!has) return false;
      OXML_ASSIGN_OR_RETURN(std::optional<std::string> key,
                            EvalKey(outer_keys_, outer_row_));
      if (!key.has_value()) continue;  // NULL key never joins
      probe_key_ = std::move(*key);
      if (stats_ != nullptr) ++stats_->index_probes;
      it_ = index_->ScanFrom(probe_key_);
      have_outer_ = true;
    }
    // The probe key covers a prefix of the index columns; matching entries
    // are exactly those whose key starts with probe_key_.
    if (it_.valid() && it_.key().size() >= probe_key_.size() &&
        std::string_view(it_.key()).substr(0, probe_key_.size()) ==
            probe_key_) {
      OXML_ASSIGN_OR_RETURN(Row inner_row, inner_->heap()->Get(it_.rid()));
      it_.Next();
      if (stats_ != nullptr) ++stats_->rows_scanned;
      *row = outer_row_;
      row->insert(row->end(), inner_row.begin(), inner_row.end());
      return true;
    }
    have_outer_ = false;
  }
}

std::string IndexNestedLoopJoinOp::Name() const {
  return "IndexNestedLoopJoin(" + inner_->name() + "." + index_->name + ")";
}

void IndexNestedLoopJoinOp::Describe(int indent, std::string* out) const {
  Operator::Describe(indent, out);
  outer_->Describe(indent + 1, out);
}

// ---------------------------------------------------------------- MergeJoin

MergeJoinOp::MergeJoinOp(OperatorPtr left, OperatorPtr right,
                         std::vector<ExprPtr> left_keys,
                         std::vector<ExprPtr> right_keys, ExecStats* stats)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      stats_(stats) {
  schema_ = left_->schema();
  schema_.Append(right_->schema());
  order_ = left_->output_order();
}

int MergeJoinOp::CompareKeys(const std::vector<Value>& lk, size_t idx) const {
  const std::vector<Value>& rk = right_rows_[idx].keys;
  for (size_t i = 0; i < lk.size(); ++i) {
    int c = lk[i].Compare(rk[i]);
    if (c != 0) return c;
  }
  return 0;
}

Status MergeJoinOp::Open() {
  if (stats_ != nullptr) ++stats_->joins_merge;
  OXML_RETURN_NOT_OK(left_->Open());
  OXML_RETURN_NOT_OK(right_->Open());
  right_rows_.clear();
  BudgetCharger budget;
  Row row;
  while (true) {
    OXML_ASSIGN_OR_RETURN(bool has, right_->Next(&row));
    if (!has) break;
    KeyedRow kr;
    kr.keys.reserve(right_keys_.size());
    for (const auto& e : right_keys_) {
      OXML_ASSIGN_OR_RETURN(Value v, e->Eval(row));
      if (v.is_null()) kr.has_null = true;  // NULL keys never join
      kr.keys.push_back(std::move(v));
    }
    OXML_RETURN_NOT_OK(
        budget.Add(EstimateRowBytes(row) + EstimateRowBytes(kr.keys)));
    kr.row = std::move(row);
    right_rows_.push_back(std::move(kr));
  }
  right_->Close();
  have_left_ = false;
  scan_ = group_begin_ = group_end_ = group_pos_ = 0;
  return Status::OK();
}

Result<bool> MergeJoinOp::Next(Row* row) {
  while (true) {
    if (!have_left_) {
      OXML_ASSIGN_OR_RETURN(bool has, left_->Next(&left_row_));
      if (!has) return false;
      left_key_values_.clear();
      bool null_key = false;
      for (const auto& e : left_keys_) {
        OXML_ASSIGN_OR_RETURN(Value v, e->Eval(left_row_));
        if (v.is_null()) null_key = true;
        left_key_values_.push_back(std::move(v));
      }
      if (null_key) continue;
      // Left keys arrive ascending, so the equal-key window only ever
      // moves forward; a repeated left key re-reads the same window.
      while (scan_ < right_rows_.size() &&
             (right_rows_[scan_].has_null ||
              CompareKeys(left_key_values_, scan_) > 0)) {
        ++scan_;
      }
      group_begin_ = scan_;
      group_end_ = group_begin_;
      while (group_end_ < right_rows_.size() &&
             !right_rows_[group_end_].has_null &&
             CompareKeys(left_key_values_, group_end_) == 0) {
        ++group_end_;
      }
      group_pos_ = group_begin_;
      have_left_ = true;
    }
    if (group_pos_ < group_end_) {
      *row = left_row_;
      const Row& r = right_rows_[group_pos_++].row;
      row->insert(row->end(), r.begin(), r.end());
      return true;
    }
    have_left_ = false;
  }
}

void MergeJoinOp::Close() {
  left_->Close();
  right_rows_.clear();
}

std::string MergeJoinOp::Name() const {
  std::string keys;
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) keys += ", ";
    keys += left_keys_[i]->ToString() + "=" + right_keys_[i]->ToString();
  }
  return "MergeJoin(" + keys + ")";
}

void MergeJoinOp::Describe(int indent, std::string* out) const {
  Operator::Describe(indent, out);
  left_->Describe(indent + 1, out);
  right_->Describe(indent + 1, out);
}

// ----------------------------------------------------------- StructuralJoin

StructuralJoinOp::StructuralJoinOp(OperatorPtr ancestors,
                                   OperatorPtr descendants, ExprPtr anc_start,
                                   ExprPtr anc_end, ExprPtr desc_start,
                                   bool lower_strict, bool upper_inclusive,
                                   ExecStats* stats)
    : anc_(std::move(ancestors)),
      desc_(std::move(descendants)),
      anc_start_(std::move(anc_start)),
      anc_end_(std::move(anc_end)),
      desc_start_(std::move(desc_start)),
      lower_strict_(lower_strict),
      upper_inclusive_(upper_inclusive),
      stats_(stats) {
  schema_ = anc_->schema();
  schema_.Append(desc_->schema());
  // Descendants drive the merge, so the output is sorted on the descendant
  // start column (all pairs for one descendant are contiguous, ancestors
  // within a group in start order).
  if (desc_start_->kind() == Expr::Kind::kColumn) {
    int c = static_cast<const ColumnExpr*>(desc_start_.get())->index();
    if (c >= 0) {
      order_.push_back({static_cast<int>(anc_->schema().size()) + c, false});
    }
  }
}

bool StructuralJoinOp::Contains(const StackEntry& e,
                                const Value& start) const {
  if (e.start.is_null() || e.end.is_null() || start.is_null()) return false;
  int lo = start.Compare(e.start);
  if (lower_strict_ ? lo <= 0 : lo < 0) return false;
  int hi = start.Compare(e.end);
  return upper_inclusive_ ? hi <= 0 : hi < 0;
}

Status StructuralJoinOp::AdvanceAncestors(const Value& start) {
  while (!anc_done_ || have_pending_) {
    if (!have_pending_) {
      OXML_ASSIGN_OR_RETURN(bool has, anc_->Next(&pending_anc_));
      if (!has) {
        anc_done_ = true;
        return Status::OK();
      }
      OXML_ASSIGN_OR_RETURN(pending_start_, anc_start_->Eval(pending_anc_));
      have_pending_ = true;
    }
    if (pending_start_.is_null()) {  // a NULL interval contains nothing
      have_pending_ = false;
      continue;
    }
    int c = pending_start_.Compare(start);
    if (!(lower_strict_ ? c < 0 : c <= 0)) return Status::OK();
    StackEntry e;
    OXML_ASSIGN_OR_RETURN(e.end, anc_end_->Eval(pending_anc_));
    e.start = std::move(pending_start_);
    e.row = std::move(pending_anc_);
    stack_.push_back(std::move(e));
    have_pending_ = false;
  }
  return Status::OK();
}

Result<bool> StructuralJoinOp::Next(Row* row) {
  while (true) {
    if (!have_desc_) {
      OXML_ASSIGN_OR_RETURN(bool has, desc_->Next(&desc_row_));
      if (!has) return false;
      OXML_ASSIGN_OR_RETURN(desc_start_value_, desc_start_->Eval(desc_row_));
      if (desc_start_value_.is_null()) continue;  // never contained
      OXML_RETURN_NOT_OK(AdvanceAncestors(desc_start_value_));
      // Retire ancestors whose interval ended before this start: later
      // descendants only have larger starts, so the entries can never
      // match again. Popping from the top is exact for properly nested
      // intervals; for overlapping inputs the per-emit Contains() check
      // below keeps the join correct regardless.
      while (!stack_.empty()) {
        const StackEntry& top = stack_.back();
        bool expired =
            top.end.is_null() ||
            (upper_inclusive_
                 ? top.end.Compare(desc_start_value_) < 0
                 : top.end.Compare(desc_start_value_) <= 0);
        if (!expired) break;
        stack_.pop_back();
      }
      have_desc_ = true;
      emit_pos_ = 0;
    }
    while (emit_pos_ < stack_.size()) {
      const StackEntry& e = stack_[emit_pos_++];
      if (!Contains(e, desc_start_value_)) continue;
      row->clear();
      row->reserve(e.row.size() + desc_row_.size());
      row->insert(row->end(), e.row.begin(), e.row.end());
      row->insert(row->end(), desc_row_.begin(), desc_row_.end());
      return true;
    }
    have_desc_ = false;
  }
}

Status StructuralJoinOp::Open() {
  if (stats_ != nullptr) ++stats_->joins_structural;
  OXML_RETURN_NOT_OK(anc_->Open());
  OXML_RETURN_NOT_OK(desc_->Open());
  stack_.clear();
  have_pending_ = false;
  anc_done_ = false;
  have_desc_ = false;
  emit_pos_ = 0;
  return Status::OK();
}

void StructuralJoinOp::Close() {
  anc_->Close();
  desc_->Close();
  stack_.clear();
}

std::string StructuralJoinOp::Name() const {
  return "StructuralJoin(" + desc_start_->ToString() +
         (lower_strict_ ? " > " : " >= ") + anc_start_->ToString() + " AND " +
         desc_start_->ToString() + (upper_inclusive_ ? " <= " : " < ") +
         anc_end_->ToString() + ")";
}

void StructuralJoinOp::Describe(int indent, std::string* out) const {
  Operator::Describe(indent, out);
  anc_->Describe(indent + 1, out);
  desc_->Describe(indent + 1, out);
}

// --------------------------------------------------------------------- Sort

SortOp::SortOp(OperatorPtr child, std::vector<ExprPtr> order_exprs,
               std::vector<bool> desc, ExecStats* stats)
    : child_(std::move(child)),
      order_exprs_(std::move(order_exprs)),
      desc_(std::move(desc)),
      stats_(stats) {
  schema_ = child_->schema();
  // Report the column-expression prefix of the sort keys as the output
  // order (an expression key still sorts the stream, but cannot be named
  // as an order property).
  for (size_t i = 0; i < order_exprs_.size(); ++i) {
    if (order_exprs_[i]->kind() != Expr::Kind::kColumn) break;
    int c = static_cast<const ColumnExpr*>(order_exprs_[i].get())->index();
    if (c < 0) break;
    order_.push_back({c, desc_[i]});
  }
}

Status SortOp::Open() {
  if (stats_ != nullptr) ++stats_->sorts_performed;
  OXML_RETURN_NOT_OK(child_->Open());
  rows_.clear();
  pos_ = 0;
  BudgetCharger budget;
  Row row;
  while (true) {
    OXML_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    OXML_RETURN_NOT_OK(budget.AddRow(row));
    rows_.push_back(std::move(row));
  }
  child_->Close();

  // Precompute sort keys to keep the comparator exception-free.
  struct Keyed {
    std::vector<Value> keys;
    size_t index;
  };
  std::vector<Keyed> keyed(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    keyed[i].index = i;
    keyed[i].keys.reserve(order_exprs_.size());
    for (const auto& e : order_exprs_) {
      OXML_ASSIGN_OR_RETURN(Value v, e->Eval(rows_[i]));
      keyed[i].keys.push_back(std::move(v));
    }
  }
  // stable_sort + a strict-weak comparator that returns false on ties:
  // rows with equal keys keep their input order. XPath results rely on
  // this — sibling nodes tie on every key the encodings expose (e.g. a
  // shared sord chain position), and their document order must survive.
  std::stable_sort(keyed.begin(), keyed.end(),
                   [this](const Keyed& a, const Keyed& b) {
                     for (size_t k = 0; k < a.keys.size(); ++k) {
                       int c = a.keys[k].Compare(b.keys[k]);
                       if (c != 0) return desc_[k] ? c > 0 : c < 0;
                     }
                     return false;
                   });
  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (const Keyed& k : keyed) sorted.push_back(std::move(rows_[k.index]));
  rows_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SortOp::Next(Row* row) {
  if (pos_ >= rows_.size()) return false;
  // Each materialized row is produced exactly once per Open(), so handing
  // ownership to the caller is safe.
  *row = std::move(rows_[pos_++]);
  return true;
}

void SortOp::Close() { rows_.clear(); }

std::string SortOp::Name() const {
  std::string keys;
  for (size_t i = 0; i < order_exprs_.size(); ++i) {
    if (i > 0) keys += ", ";
    keys += order_exprs_[i]->ToString();
    if (desc_[i]) keys += " DESC";
  }
  return "Sort(" + keys + ")";
}

void SortOp::Describe(int indent, std::string* out) const {
  Operator::Describe(indent, out);
  child_->Describe(indent + 1, out);
}

// -------------------------------------------------------------------- Limit

LimitOp::LimitOp(OperatorPtr child, int64_t limit)
    : child_(std::move(child)), limit_(limit) {
  schema_ = child_->schema();
  order_ = child_->output_order();
}

Status LimitOp::Open() {
  produced_ = 0;
  return child_->Open();
}

Result<bool> LimitOp::Next(Row* row) {
  if (produced_ >= limit_) return false;
  OXML_ASSIGN_OR_RETURN(bool has, child_->Next(row));
  if (!has) return false;
  ++produced_;
  return true;
}

std::string LimitOp::Name() const {
  return "Limit(" + std::to_string(limit_) + ")";
}

void LimitOp::Describe(int indent, std::string* out) const {
  Operator::Describe(indent, out);
  child_->Describe(indent + 1, out);
}

// ----------------------------------------------------------------- Distinct

DistinctOp::DistinctOp(OperatorPtr child) : child_(std::move(child)) {
  schema_ = child_->schema();
  order_ = child_->output_order();  // streaming dedup keeps input order
}

Status DistinctOp::Open() {
  seen_.clear();
  return child_->Open();
}

Result<bool> DistinctOp::Next(Row* row) {
  while (true) {
    OXML_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    size_t h = HashRow(*row);
    auto range = seen_.equal_range(h);
    bool duplicate = false;
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second.size() != row->size()) continue;
      bool equal = true;
      for (size_t i = 0; i < row->size(); ++i) {
        if (it->second[i].Compare((*row)[i]) != 0) {
          equal = false;
          break;
        }
      }
      if (equal) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      seen_.emplace(h, *row);
      return true;
    }
  }
}

void DistinctOp::Close() {
  child_->Close();
  seen_.clear();
}

std::string DistinctOp::Name() const { return "Distinct"; }

void DistinctOp::Describe(int indent, std::string* out) const {
  Operator::Describe(indent, out);
  child_->Describe(indent + 1, out);
}

// ---------------------------------------------------------------- Aggregate

AggregateOp::AggregateOp(OperatorPtr child, std::vector<ExprPtr> group_by,
                         std::vector<AggregateSpec> aggregates,
                         Schema out_schema)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggregates_(std::move(aggregates)) {
  schema_ = std::move(out_schema);
}

Status AggregateOp::Open() {
  OXML_RETURN_NOT_OK(child_->Open());
  groups_.clear();
  group_index_.clear();
  pos_ = 0;

  Row row;
  while (true) {
    OXML_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;

    Row group_values;
    group_values.reserve(group_by_.size());
    for (const auto& e : group_by_) {
      OXML_ASSIGN_OR_RETURN(Value v, e->Eval(row));
      group_values.push_back(std::move(v));
    }

    size_t h = HashRow(group_values);
    GroupState* state = nullptr;
    for (size_t idx : group_index_[h]) {
      bool equal = true;
      for (size_t i = 0; i < group_values.size(); ++i) {
        if (groups_[idx].group_values[i].Compare(group_values[i]) != 0) {
          equal = false;
          break;
        }
      }
      if (equal) {
        state = &groups_[idx];
        break;
      }
    }
    if (state == nullptr) {
      group_index_[h].push_back(groups_.size());
      groups_.push_back(GroupState{
          std::move(group_values),
          std::vector<Value>(aggregates_.size(), Value::Null()),
          std::vector<int64_t>(aggregates_.size(), 0)});
      state = &groups_.back();
    }

    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const AggregateSpec& spec = aggregates_[a];
      Value arg = Value::Null();
      if (spec.arg != nullptr) {
        OXML_ASSIGN_OR_RETURN(arg, spec.arg->Eval(row));
      }
      Value& acc = state->accumulators[a];
      switch (spec.kind) {
        case AggregateKind::kCount:
          if (spec.arg == nullptr || !arg.is_null()) ++state->counts[a];
          break;
        case AggregateKind::kSum:
        case AggregateKind::kAvg:
          if (!arg.is_null()) {
            ++state->counts[a];
            if (acc.is_null()) {
              acc = arg;
            } else if (acc.type() == TypeId::kInt &&
                       arg.type() == TypeId::kInt) {
              acc = Value::Int(acc.AsInt() + arg.AsInt());
            } else {
              acc = Value::Double(acc.AsDouble() + arg.AsDouble());
            }
          }
          break;
        case AggregateKind::kMin:
          if (!arg.is_null() && (acc.is_null() || arg.Compare(acc) < 0)) {
            acc = arg;
          }
          break;
        case AggregateKind::kMax:
          if (!arg.is_null() && (acc.is_null() || arg.Compare(acc) > 0)) {
            acc = arg;
          }
          break;
        case AggregateKind::kNone:
          return Status::Internal("non-aggregate in AggregateOp");
      }
    }
  }
  child_->Close();

  // A global aggregate (no GROUP BY) over zero rows still yields one row.
  if (groups_.empty() && group_by_.empty()) {
    groups_.push_back(GroupState{
        Row{}, std::vector<Value>(aggregates_.size(), Value::Null()),
        std::vector<int64_t>(aggregates_.size(), 0)});
  }
  return Status::OK();
}

Result<bool> AggregateOp::Next(Row* row) {
  if (pos_ >= groups_.size()) return false;
  GroupState& g = groups_[pos_++];
  row->clear();
  row->insert(row->end(), g.group_values.begin(), g.group_values.end());
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    switch (aggregates_[a].kind) {
      case AggregateKind::kCount:
        row->push_back(Value::Int(g.counts[a]));
        break;
      case AggregateKind::kAvg:
        if (g.counts[a] == 0) {
          row->push_back(Value::Null());
        } else {
          row->push_back(
              Value::Double(g.accumulators[a].AsDouble() /
                            static_cast<double>(g.counts[a])));
        }
        break;
      default:
        row->push_back(g.accumulators[a]);
    }
  }
  return true;
}

void AggregateOp::Close() {
  groups_.clear();
  group_index_.clear();
}

std::string AggregateOp::Name() const {
  return "Aggregate(groups=" + std::to_string(group_by_.size()) +
         ", aggs=" + std::to_string(aggregates_.size()) + ")";
}

void AggregateOp::Describe(int indent, std::string* out) const {
  Operator::Describe(indent, out);
  child_->Describe(indent + 1, out);
}

// ---------------------------------------------------------------- ResultSet

std::string ResultSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out += " | ";
    out += schema.column(i).name;
  }
  out += "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

Result<ResultSet> ExecuteToResultSet(Operator* root, size_t size_hint) {
  ResultSet rs;
  rs.schema = root->schema();
  if (size_hint > 0) rs.rows.reserve(size_hint);
  OXML_RETURN_NOT_OK(root->Open());
  BudgetCharger budget;
  Row row;
  while (true) {
    // Per-row governance: deadline/cancel at the root Next() boundary and
    // memory accounting for the materialized result set. Close on the way
    // out so plan-cached operator instances drop their buffered state
    // instead of carrying it until their next execution.
    Status ctl = CheckCurrentControl();
    if (!ctl.ok()) {
      root->Close();
      return ctl;
    }
    Result<bool> has = root->Next(&row);
    if (!has.ok()) {
      root->Close();
      return has.status();
    }
    if (!*has) break;
    Status charged = budget.AddRow(row);
    if (!charged.ok()) {
      root->Close();
      return charged;
    }
    rs.rows.push_back(std::move(row));
  }
  root->Close();
  return rs;
}

}  // namespace oxml
