#ifndef OXML_RELATIONAL_PAGE_H_
#define OXML_RELATIONAL_PAGE_H_

#include <cstdint>
#include <string_view>

#include "src/common/result.h"

namespace oxml {

/// Fixed page size used throughout the storage layer.
constexpr size_t kPageSize = 8192;

/// Invalid / "null" page id sentinel.
constexpr uint32_t kInvalidPageId = 0xFFFFFFFFu;

/// A record id: (page, slot).
struct Rid {
  uint32_t page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page_id != kInvalidPageId; }
  bool operator==(const Rid&) const = default;
  /// Total order used to disambiguate duplicate index keys.
  auto operator<=>(const Rid&) const = default;
};

/// Slotted-page accessor over a raw kPageSize buffer (the buffer is owned by
/// the buffer pool). Layout:
///
///   [u16 slot_count][u16 cell_start][u32 next_page]      -- header (8 bytes)
///   [u16 offset, u16 size] x slot_count                  -- slot directory
///   ... free space ...
///   cells growing downward from the end of the page
///
/// A deleted slot keeps its directory entry with offset == kDeletedOffset so
/// that live Rids stay stable.
class SlottedPage {
 public:
  static constexpr uint16_t kDeletedOffset = 0xFFFF;

  /// Wraps an existing, already-initialized page buffer.
  explicit SlottedPage(char* data) : data_(data) {}

  /// Formats a fresh page (empty slot directory, no next page).
  static void Initialize(char* data);

  uint16_t slot_count() const;
  uint32_t next_page() const;
  void set_next_page(uint32_t id);

  /// Bytes available for a new cell including its directory entry.
  size_t FreeSpace() const;

  /// Inserts a cell; returns its slot index or OutOfRange if it cannot fit
  /// even after compaction.
  Result<uint16_t> Insert(std::string_view cell);

  /// Returns the cell stored in `slot`; NotFound for deleted/bad slots.
  Result<std::string_view> Get(uint16_t slot) const;

  /// Marks `slot` deleted. The directory entry is retained.
  Status Delete(uint16_t slot);

  /// Replaces the cell at `slot`. Succeeds in place when the new cell is no
  /// larger; otherwise tries to relocate within this page; otherwise returns
  /// OutOfRange (the caller moves the record to another page).
  Status Update(uint16_t slot, std::string_view cell);

  /// Number of live (non-deleted) cells.
  size_t LiveCount() const;

 private:
  uint16_t cell_start() const;
  void set_cell_start(uint16_t v);
  void set_slot_count(uint16_t v);
  void GetSlot(uint16_t slot, uint16_t* offset, uint16_t* size) const;
  void SetSlot(uint16_t slot, uint16_t offset, uint16_t size);

  /// Rewrites all live cells contiguously at the end of the page to coalesce
  /// free space. Slot indices are preserved.
  void Compact();

  char* data_;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_PAGE_H_
