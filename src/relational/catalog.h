#ifndef OXML_RELATIONAL_CATALOG_H_
#define OXML_RELATIONAL_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/relational/btree.h"
#include "src/relational/heap_table.h"
#include "src/relational/key_codec.h"
#include "src/relational/schema.h"

namespace oxml {

/// A relaxed-atomic counter that still behaves like the plain uint64_t it
/// replaced: copyable (benchmarks snapshot whole ExecStats structs),
/// incrementable with ++/+=, and implicitly convertible for comparisons and
/// arithmetic. Relaxed ordering is sufficient — these are monotone tallies,
/// never used to synchronize, and concurrent readers only need each bump to
/// be free of torn writes and data races.
class StatCounter {
 public:
  StatCounter(uint64_t v = 0) : v_(v) {}  // NOLINT: implicit by design
  StatCounter(const StatCounter& o)
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  StatCounter& operator=(const StatCounter& o) {
    v_.store(o.v_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator+=(uint64_t n) {
    v_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }
  /// Raises the counter to at least `v` (high-water marks like
  /// `threads_used`).
  void UpdateMax(uint64_t v) {
    uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
    }
  }
  operator uint64_t() const {  // NOLINT: implicit by design
    return v_.load(std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_;
};

/// Mutation counters shared by the executor and the storage layer; the
/// ordered-XML benchmarks read these to report "rows touched" per update.
/// Counters are relaxed atomics (see StatCounter): concurrent read-only
/// statements bump them from many threads at once.
struct ExecStats {
  StatCounter rows_scanned = 0;    // rows produced by table/index scans
  StatCounter index_probes = 0;    // index lookups / range scans started
  StatCounter rows_inserted = 0;
  StatCounter rows_deleted = 0;
  StatCounter rows_updated = 0;
  StatCounter statements = 0;
  StatCounter plan_cache_hits = 0;    // statements served from the plan cache
  StatCounter plan_cache_misses = 0;  // statements that paid parse + plan
  StatCounter parse_plan_ns = 0;  // wall time spent lexing/parsing/planning

  // Join-strategy counters, bumped once per join operator Open() so that a
  // benchmark (or test) can see which physical join the planner picked.
  StatCounter joins_nested_loop = 0;
  StatCounter joins_hash = 0;
  StatCounter joins_index_nested_loop = 0;
  StatCounter joins_merge = 0;
  StatCounter joins_structural = 0;

  // Sort accounting: `sorts_performed` counts SortOp::Open() calls (a full
  // materialize + sort); `sorts_elided` counts ORDER BY clauses the planner
  // dropped because the input order already satisfied them.
  StatCounter sorts_performed = 0;
  StatCounter sorts_elided = 0;

  // Intra-query parallelism (see DatabaseOptions::enable_parallel_execution):
  // `threads_used` is the high-water worker count any parallel operator
  // fanned out to, `morsels` counts scan/join partitions executed, and
  // `parallel_joins` counts ParallelStructuralJoinOp::Open() calls.
  StatCounter threads_used = 0;
  StatCounter morsels = 0;
  StatCounter parallel_joins = 0;

  // Parallel bulk load (see DatabaseOptions::enable_parallel_load):
  // `rows_shredded` counts rows produced by the partition/shred phase,
  // `runs_merged` counts the per-worker sorted runs fed to the k-way
  // merge, and `load_threads_used` is the high-water worker count that
  // shredded at least one partition during a load.
  StatCounter rows_shredded = 0;
  StatCounter runs_merged = 0;
  StatCounter load_threads_used = 0;

  // MVCC snapshot reads (see DatabaseOptions::enable_mvcc):
  // `snapshot_reads` counts page fetches served from a published version
  // instead of the live frame, `versions_retained` is the cumulative count
  // of page versions published by copy-on-write capture, and
  // `version_chain_max` is the high-water length of any single page's
  // version chain (1 under the current one-writer design).
  StatCounter snapshot_reads = 0;
  StatCounter versions_retained = 0;
  StatCounter version_chain_max = 0;

  // Resource governance (see DatabaseOptions::default_statement_timeout_ms,
  // statement_memory_budget_bytes): per-statement outcomes counted by the
  // statement governor when a limit trips, plus transient-I/O retries the
  // storage backend absorbed (EAGAIN / injected transient faults) and
  // auto-checkpoints that failed and were deferred to the next threshold
  // crossing.
  StatCounter statements_timed_out = 0;
  StatCounter statements_cancelled = 0;
  StatCounter mem_budget_rejections = 0;
  StatCounter io_retries = 0;
  StatCounter checkpoints_failed = 0;

  /// Fraction of statement compilations avoided by the plan cache.
  double PlanCacheHitRate() const {
    uint64_t total = plan_cache_hits + plan_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(plan_cache_hits) /
                            static_cast<double>(total);
  }

  void Reset() { *this = ExecStats(); }
};

/// What an open transaction changed in one memory-resident B+tree, kept so
/// snapshot readers can reconstruct the committed view (the heap has page
/// versions for this; the trees mutate in place and need a logical delta).
/// The committed view of the index is (tree \ inserted) ∪ erased — both
/// sets are ordered by (key, rid), the tree's own total order.
struct IndexTxnDelta {
  using Entry = std::pair<std::string, Rid>;
  std::set<Entry> inserted;  ///< added by the open txn: hidden from readers
  std::set<Entry> erased;    ///< removed by the open txn: re-surfaced
  /// The tree was bulk-built inside the open transaction (empty before it):
  /// the committed view is empty regardless of tree contents.
  bool whole_tree_new = false;
};

/// An ordered cursor over one index that readers use instead of a raw
/// BPlusTree::Iterator. In current-state mode it is a passthrough; in
/// snapshot mode (an open transaction's delta + a thread-local
/// ReadSnapshot) it merges the tree's entries — minus the transaction's
/// inserts — with the transaction's erased entries, yielding the committed
/// view in exact (key, rid) order.
class IndexCursor {
 public:
  IndexCursor() = default;
  /// Current-state passthrough.
  explicit IndexCursor(BPlusTree::Iterator it) : it_(it) {}
  /// Snapshot merge view. `extra` iterates the delta's erased entries from
  /// the cursor's start position.
  IndexCursor(BPlusTree::Iterator it, const IndexTxnDelta* delta,
              std::set<IndexTxnDelta::Entry>::const_iterator extra,
              std::set<IndexTxnDelta::Entry>::const_iterator extra_end)
      : it_(it), delta_(delta), extra_(extra), extra_end_(extra_end) {
    SkipHidden();
  }

  bool valid() const { return TreeSideValid() || extra_ != extra_end_; }
  const std::string& key() const {
    return ExtraIsCurrent() ? extra_->first : it_.key();
  }
  const Rid& rid() const {
    return ExtraIsCurrent() ? extra_->second : it_.rid();
  }
  void Next() {
    if (ExtraIsCurrent()) {
      ++extra_;
    } else {
      it_.Next();
      SkipHidden();
    }
  }

 private:
  bool TreeSideValid() const {
    return it_.valid() && !(delta_ != nullptr && delta_->whole_tree_new);
  }
  /// True when the erased-set side holds the smaller (key, rid) entry.
  bool ExtraIsCurrent() const {
    if (extra_ == extra_end_) return false;
    if (!TreeSideValid()) return true;
    const IndexTxnDelta::Entry& e = *extra_;
    int c = e.first.compare(it_.key());
    if (c != 0) return c < 0;
    return e.second < it_.rid();
  }
  /// Advances the tree side past entries the open transaction inserted.
  void SkipHidden() {
    if (delta_ == nullptr) return;
    while (it_.valid() &&
           delta_->inserted.count({it_.key(), it_.rid()}) > 0) {
      it_.Next();
    }
  }

  BPlusTree::Iterator it_;
  const IndexTxnDelta* delta_ = nullptr;
  std::set<IndexTxnDelta::Entry>::const_iterator extra_;
  std::set<IndexTxnDelta::Entry>::const_iterator extra_end_;
};

/// A secondary (or primary, when `unique`) index over a table.
///
/// All mutations flow through the Insert/Erase/BulkBuild wrappers so that,
/// while a transaction is open under MVCC, the logical delta needed by
/// snapshot readers is maintained alongside the in-place tree (see
/// IndexTxnDelta). Readers open cursors via ScanFrom/ScanBegin, which pick
/// snapshot or current-state mode off the thread-local ReadSnapshot.
struct TableIndex {
  std::string name;
  std::vector<int> column_indices;  // positions in the table schema
  bool unique = false;
  BPlusTree tree;
  /// Non-null while an MVCC transaction is open (set by Database::Begin on
  /// every index, cleared at commit/rollback). Only the transaction owner
  /// mutates it; readers access it read-only under the shared statement
  /// latch, which the owner's mutating statements exclude.
  std::unique_ptr<IndexTxnDelta> txn_delta;

  /// Encoded key of `row` for this index.
  std::string KeyFor(const Row& row) const {
    std::vector<Value> vals;
    vals.reserve(column_indices.size());
    for (int c : column_indices) vals.push_back(row[c]);
    return EncodeKey(vals);
  }

  void BeginTxnTracking() { txn_delta = std::make_unique<IndexTxnDelta>(); }
  void EndTxnTracking() { txn_delta.reset(); }

  /// Inserts into the tree, recording the delta when tracking. Re-inserting
  /// an entry the same transaction erased cancels instead of accumulating
  /// ((key, rid) pairs are unique, so the entry is back to committed state).
  void Insert(std::string_view key, const Rid& rid) {
    tree.Insert(key, rid);
    if (txn_delta != nullptr) {
      IndexTxnDelta::Entry e{std::string(key), rid};
      if (txn_delta->erased.erase(e) == 0) {
        txn_delta->inserted.insert(std::move(e));
      }
    }
  }

  /// Erases from the tree, recording the delta when tracking (only when the
  /// entry was actually present). Erasing an entry inserted by the same
  /// transaction cancels.
  bool Erase(std::string_view key, const Rid& rid) {
    bool present = tree.Erase(key, rid);
    if (present && txn_delta != nullptr) {
      IndexTxnDelta::Entry e{std::string(key), rid};
      if (txn_delta->inserted.erase(e) == 0) {
        txn_delta->erased.insert(std::move(e));
      }
    }
    return present;
  }

  /// Bulk-builds the (empty) tree; when tracking, the committed view stays
  /// empty — the whole tree belongs to the open transaction.
  Status BulkBuild(std::vector<BPlusTree::Entry>&& entries) {
    Status st = tree.BulkBuild(std::move(entries));
    if (st.ok() && txn_delta != nullptr) txn_delta->whole_tree_new = true;
    return st;
  }

  /// Ordered cursor at the first visible entry with key >= `lower`.
  IndexCursor ScanFrom(std::string_view lower) const {
    if (!SnapshotMode()) return IndexCursor(tree.LowerBound(lower));
    return IndexCursor(
        tree.LowerBound(lower), txn_delta.get(),
        txn_delta->erased.lower_bound({std::string(lower), Rid{0, 0}}),
        txn_delta->erased.end());
  }

  /// Ordered cursor at the smallest visible entry.
  IndexCursor ScanBegin() const {
    if (!SnapshotMode()) return IndexCursor(tree.Begin());
    return IndexCursor(tree.Begin(), txn_delta.get(),
                       txn_delta->erased.begin(), txn_delta->erased.end());
  }

 private:
  /// Snapshot mode: a transaction is being tracked and the calling thread
  /// reads under a snapshot (i.e. it is not the transaction owner).
  bool SnapshotMode() const {
    return txn_delta != nullptr && CurrentReadSnapshot() != nullptr;
  }
};

/// A table: heap storage plus its indexes, with index maintenance on every
/// mutation. All row mutations must flow through this class.
class TableInfo {
 public:
  TableInfo(std::string name, Schema schema, std::unique_ptr<HeapTable> heap)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        heap_(std::move(heap)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  HeapTable* heap() const { return heap_.get(); }

  const std::vector<std::unique_ptr<TableIndex>>& indexes() const {
    return indexes_;
  }

  /// Builds a new index (bulk-loading existing rows). Fails on duplicate
  /// keys when `unique`.
  Result<TableIndex*> CreateIndex(std::string index_name,
                                  std::vector<int> column_indices,
                                  bool unique);

  TableIndex* FindIndex(const std::string& index_name) const;

  /// Discards every index and rebuilds it by rescanning the heap. Used by
  /// transaction rollback after the heap pages were restored: the memory-
  /// resident B+trees have no pre-images, so they are recomputed the same
  /// way Database::Open recomputes them. Invalidates raw TableIndex*
  /// pointers held elsewhere (cached plans must be dropped by the caller).
  Status RebuildIndexes();

  /// Inserts a row, maintaining all indexes; enforces unique constraints.
  Result<Rid> InsertRow(const Row& row, ExecStats* stats);

  /// Appends `rows` through the bulk path: one HeapTable::AppendBatch for
  /// the heap, then each index is built bottom-up (sort the (key, rid)
  /// entries, BPlusTree::BulkBuild) instead of one Insert per row — with
  /// the per-index builds fanned out over `pool` when one is supplied.
  /// Requires an empty table (bulk index construction needs empty trees);
  /// callers loading into a non-empty table must fall back to InsertRow.
  /// Enforces unique constraints (duplicate key => Aborted). On failure the
  /// table may hold partial state; the caller's transaction rollback
  /// restores the heap pages and rebuilds the indexes.
  Status BulkLoadRows(const std::vector<Row>& rows, class ThreadPool* pool,
                      ExecStats* stats);

  /// Deletes the row at `rid`, maintaining indexes.
  Status DeleteRow(const Rid& rid, ExecStats* stats);

  /// Replaces the row at `rid`; returns the (possibly moved) rid.
  Result<Rid> UpdateRow(const Rid& rid, const Row& new_row, ExecStats* stats);

 private:
  std::string name_;
  Schema schema_;
  std::unique_ptr<HeapTable> heap_;
  std::vector<std::unique_ptr<TableIndex>> indexes_;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_CATALOG_H_
