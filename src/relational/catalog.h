#ifndef OXML_RELATIONAL_CATALOG_H_
#define OXML_RELATIONAL_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/btree.h"
#include "src/relational/heap_table.h"
#include "src/relational/key_codec.h"
#include "src/relational/schema.h"

namespace oxml {

/// A relaxed-atomic counter that still behaves like the plain uint64_t it
/// replaced: copyable (benchmarks snapshot whole ExecStats structs),
/// incrementable with ++/+=, and implicitly convertible for comparisons and
/// arithmetic. Relaxed ordering is sufficient — these are monotone tallies,
/// never used to synchronize, and concurrent readers only need each bump to
/// be free of torn writes and data races.
class StatCounter {
 public:
  StatCounter(uint64_t v = 0) : v_(v) {}  // NOLINT: implicit by design
  StatCounter(const StatCounter& o)
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  StatCounter& operator=(const StatCounter& o) {
    v_.store(o.v_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator+=(uint64_t n) {
    v_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }
  /// Raises the counter to at least `v` (high-water marks like
  /// `threads_used`).
  void UpdateMax(uint64_t v) {
    uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
    }
  }
  operator uint64_t() const {  // NOLINT: implicit by design
    return v_.load(std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_;
};

/// Mutation counters shared by the executor and the storage layer; the
/// ordered-XML benchmarks read these to report "rows touched" per update.
/// Counters are relaxed atomics (see StatCounter): concurrent read-only
/// statements bump them from many threads at once.
struct ExecStats {
  StatCounter rows_scanned = 0;    // rows produced by table/index scans
  StatCounter index_probes = 0;    // index lookups / range scans started
  StatCounter rows_inserted = 0;
  StatCounter rows_deleted = 0;
  StatCounter rows_updated = 0;
  StatCounter statements = 0;
  StatCounter plan_cache_hits = 0;    // statements served from the plan cache
  StatCounter plan_cache_misses = 0;  // statements that paid parse + plan
  StatCounter parse_plan_ns = 0;  // wall time spent lexing/parsing/planning

  // Join-strategy counters, bumped once per join operator Open() so that a
  // benchmark (or test) can see which physical join the planner picked.
  StatCounter joins_nested_loop = 0;
  StatCounter joins_hash = 0;
  StatCounter joins_index_nested_loop = 0;
  StatCounter joins_merge = 0;
  StatCounter joins_structural = 0;

  // Sort accounting: `sorts_performed` counts SortOp::Open() calls (a full
  // materialize + sort); `sorts_elided` counts ORDER BY clauses the planner
  // dropped because the input order already satisfied them.
  StatCounter sorts_performed = 0;
  StatCounter sorts_elided = 0;

  // Intra-query parallelism (see DatabaseOptions::enable_parallel_execution):
  // `threads_used` is the high-water worker count any parallel operator
  // fanned out to, `morsels` counts scan/join partitions executed, and
  // `parallel_joins` counts ParallelStructuralJoinOp::Open() calls.
  StatCounter threads_used = 0;
  StatCounter morsels = 0;
  StatCounter parallel_joins = 0;

  // Parallel bulk load (see DatabaseOptions::enable_parallel_load):
  // `rows_shredded` counts rows produced by the partition/shred phase,
  // `runs_merged` counts the per-worker sorted runs fed to the k-way
  // merge, and `load_threads_used` is the high-water worker count that
  // shredded at least one partition during a load.
  StatCounter rows_shredded = 0;
  StatCounter runs_merged = 0;
  StatCounter load_threads_used = 0;

  /// Fraction of statement compilations avoided by the plan cache.
  double PlanCacheHitRate() const {
    uint64_t total = plan_cache_hits + plan_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(plan_cache_hits) /
                            static_cast<double>(total);
  }

  void Reset() { *this = ExecStats(); }
};

/// A secondary (or primary, when `unique`) index over a table.
struct TableIndex {
  std::string name;
  std::vector<int> column_indices;  // positions in the table schema
  bool unique = false;
  BPlusTree tree;

  /// Encoded key of `row` for this index.
  std::string KeyFor(const Row& row) const {
    std::vector<Value> vals;
    vals.reserve(column_indices.size());
    for (int c : column_indices) vals.push_back(row[c]);
    return EncodeKey(vals);
  }
};

/// A table: heap storage plus its indexes, with index maintenance on every
/// mutation. All row mutations must flow through this class.
class TableInfo {
 public:
  TableInfo(std::string name, Schema schema, std::unique_ptr<HeapTable> heap)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        heap_(std::move(heap)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  HeapTable* heap() const { return heap_.get(); }

  const std::vector<std::unique_ptr<TableIndex>>& indexes() const {
    return indexes_;
  }

  /// Builds a new index (bulk-loading existing rows). Fails on duplicate
  /// keys when `unique`.
  Result<TableIndex*> CreateIndex(std::string index_name,
                                  std::vector<int> column_indices,
                                  bool unique);

  TableIndex* FindIndex(const std::string& index_name) const;

  /// Discards every index and rebuilds it by rescanning the heap. Used by
  /// transaction rollback after the heap pages were restored: the memory-
  /// resident B+trees have no pre-images, so they are recomputed the same
  /// way Database::Open recomputes them. Invalidates raw TableIndex*
  /// pointers held elsewhere (cached plans must be dropped by the caller).
  Status RebuildIndexes();

  /// Inserts a row, maintaining all indexes; enforces unique constraints.
  Result<Rid> InsertRow(const Row& row, ExecStats* stats);

  /// Appends `rows` through the bulk path: one HeapTable::AppendBatch for
  /// the heap, then each index is built bottom-up (sort the (key, rid)
  /// entries, BPlusTree::BulkBuild) instead of one Insert per row — with
  /// the per-index builds fanned out over `pool` when one is supplied.
  /// Requires an empty table (bulk index construction needs empty trees);
  /// callers loading into a non-empty table must fall back to InsertRow.
  /// Enforces unique constraints (duplicate key => Aborted). On failure the
  /// table may hold partial state; the caller's transaction rollback
  /// restores the heap pages and rebuilds the indexes.
  Status BulkLoadRows(const std::vector<Row>& rows, class ThreadPool* pool,
                      ExecStats* stats);

  /// Deletes the row at `rid`, maintaining indexes.
  Status DeleteRow(const Rid& rid, ExecStats* stats);

  /// Replaces the row at `rid`; returns the (possibly moved) rid.
  Result<Rid> UpdateRow(const Rid& rid, const Row& new_row, ExecStats* stats);

 private:
  std::string name_;
  Schema schema_;
  std::unique_ptr<HeapTable> heap_;
  std::vector<std::unique_ptr<TableIndex>> indexes_;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_CATALOG_H_
