#ifndef OXML_RELATIONAL_SCHEMA_H_
#define OXML_RELATIONAL_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/relational/value.h"

namespace oxml {

/// A named, typed column.
struct Column {
  std::string name;
  TypeId type;

  bool operator==(const Column&) const = default;
};

/// An ordered list of columns. Column names may be qualified
/// ("alias.column") in intermediate schemas produced by joins.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of `name`, matching either the full (possibly qualified) name or
  /// the unqualified suffix. Returns -1 if absent, -2 if ambiguous.
  int IndexOf(std::string_view name) const;

  /// Appends all columns of `other`, prefixing unqualified names with
  /// "<qualifier>." — used to build join schemas.
  void Append(const Schema& other, std::string_view qualifier = {});

  std::string ToString() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Column> columns_;
};

/// Serializes `row` (which must match `schema`) to a compact byte string:
/// a null bitmap followed by fixed 8-byte ints/doubles and
/// length-prefixed text/blob fields.
std::string EncodeRow(const Schema& schema, const Row& row);

/// Inverse of EncodeRow.
Result<Row> DecodeRow(const Schema& schema, std::string_view bytes);

}  // namespace oxml

#endif  // OXML_RELATIONAL_SCHEMA_H_
