#include "src/relational/buffer_pool.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "src/relational/wal.h"

namespace oxml {

// ---------------------------------------------------------------- backends

void IoRetryPolicy::Backoff(int attempt) {
  int64_t us = 64LL << (attempt < 5 ? attempt : 5);  // 64us .. 2ms
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

bool FileBackend::NoteRetry(int* attempt) {
  if (retries_ != nullptr) retries_->fetch_add(1, std::memory_order_relaxed);
  if (*attempt + 1 >= IoRetryPolicy::kMaxAttempts) return false;
  IoRetryPolicy::Backoff(*attempt);
  ++*attempt;
  return true;
}

Result<uint32_t> MemoryBackend::AllocatePage() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<uint32_t>(pages_.size() - 1);
}

Status MemoryBackend::ReadPage(uint32_t id, char* buf) {
  if (id >= pages_.size()) return Status::OutOfRange("bad page id");
  std::memcpy(buf, pages_[id].get(), kPageSize);
  return Status::OK();
}

Status MemoryBackend::WritePage(uint32_t id, const char* buf) {
  if (id >= pages_.size()) return Status::OutOfRange("bad page id");
  std::memcpy(pages_[id].get(), buf, kPageSize);
  return Status::OK();
}

Result<std::unique_ptr<FileBackend>> FileBackend::Open(
    const std::string& path, bool truncate) {
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  auto backend = std::unique_ptr<FileBackend>(new FileBackend(fd, path));
  if (!truncate) {
    off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) {
      return Status::IOError("lseek(" + path + "): " + std::strerror(errno));
    }
    if (size % static_cast<off_t>(kPageSize) != 0) {
      return Status::IOError(path + " is not page-aligned (corrupt?)");
    }
    backend->page_count_ = static_cast<uint32_t>(size / kPageSize);
  }
  return backend;
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint32_t> FileBackend::AllocatePage() {
  uint32_t id = page_count_;
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  OXML_RETURN_NOT_OK(WritePage(id, zeros));
  ++page_count_;
  return id;
}

Status FileBackend::ReadPage(uint32_t id, char* buf) {
  size_t done = 0;
  int attempt = 0;
  while (done < kPageSize) {
    ssize_t n = ::pread(fd_, buf + done, kPageSize - done,
                        static_cast<off_t>(id) * kPageSize +
                            static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN && NoteRetry(&attempt)) continue;
      return Status::IOError("pread(" + path_ + ", page " +
                             std::to_string(id) +
                             "): " + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("pread(" + path_ + ", page " +
                             std::to_string(id) + "): unexpected EOF at byte " +
                             std::to_string(done));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileBackend::WritePage(uint32_t id, const char* buf) {
  size_t done = 0;
  int attempt = 0;
  while (done < kPageSize) {
    ssize_t n = ::pwrite(fd_, buf + done, kPageSize - done,
                         static_cast<off_t>(id) * kPageSize +
                             static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN && NoteRetry(&attempt)) continue;
      return Status::IOError("pwrite(" + path_ + ", page " +
                             std::to_string(id) +
                             "): " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileBackend::Sync() {
  int attempt = 0;
  while (::fsync(fd_) != 0) {
    if (errno == EINTR) continue;
    if (errno == EAGAIN && NoteRetry(&attempt)) continue;
    return Status::IOError("fsync(" + path_ + "): " + std::strerror(errno));
  }
  return Status::OK();
}

// --------------------------------------------------------------- snapshots

namespace {
/// The snapshot the current thread reads under (null = current state).
/// Plain thread_local, manipulated only by the scopes below.
thread_local const ReadSnapshot* tl_read_snapshot = nullptr;
}  // namespace

const ReadSnapshot* CurrentReadSnapshot() { return tl_read_snapshot; }

ScopedReadSnapshot::ScopedReadSnapshot(uint64_t lsn)
    : prev_(tl_read_snapshot), active_(true) {
  snap_.lsn = lsn;
  tl_read_snapshot = &snap_;
}

ScopedReadSnapshot::~ScopedReadSnapshot() {
  if (active_) tl_read_snapshot = prev_;
}

SnapshotTaskScope::SnapshotTaskScope(const ReadSnapshot* snap)
    : prev_(tl_read_snapshot) {
  tl_read_snapshot = snap;
}

SnapshotTaskScope::~SnapshotTaskScope() { tl_read_snapshot = prev_; }

// ------------------------------------------------------------- page handle

PageHandle::PageHandle(BufferPool* pool, uint32_t page_id, char* data)
    : pool_(pool), page_id_(page_id), data_(data) {}

PageHandle::PageHandle(std::shared_ptr<char[]> image, uint32_t page_id)
    : page_id_(page_id), data_(image.get()), owned_(std::move(image)) {}

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_),
      page_id_(other.page_id_),
      data_(other.data_),
      owned_(std::move(other.owned_)) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    owned_ = std::move(other.owned_);
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  if (pool_ != nullptr) pool_->Unpin(page_id_, /*dirty=*/true);
  // Keep the pin: Unpin(dirty) only sets the dirty bit when pinned.
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(page_id_, /*dirty=*/false);
    pool_ = nullptr;
  }
}

// ------------------------------------------------------------- buffer pool

BufferPool::BufferPool(std::unique_ptr<StorageBackend> backend,
                       size_t capacity)
    : backend_(std::move(backend)), capacity_(capacity) {}

BufferPool::~BufferPool() {
  if (!discard_on_destroy_) (void)FlushAll();
}

void BufferPool::LruRemove(Frame* f) {
  if (capacity_ == 0) return;  // unbounded pools never evict
  std::lock_guard<std::mutex> lock(lru_mu_);
  if (f->in_lru) {
    lru_.erase(f->lru_pos);
    f->in_lru = false;
  }
}

void BufferPool::LruAdd(uint32_t page_id, Frame* f) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(lru_mu_);
  // A concurrent reader may have re-pinned the frame between our pin-count
  // decrement and this point; listing a pinned frame is harmless because
  // eviction re-checks the pin count under the exclusive table latch.
  if (!f->in_lru) {
    lru_.push_front(page_id);
    f->lru_pos = lru_.begin();
    f->in_lru = true;
  }
}

Status BufferPool::EnsureCapacity() {
  if (capacity_ == 0 || frames_.size() < capacity_) return Status::OK();
  // Evict the least recently used unpinned frame. Frames dirtied by the
  // open transaction are not eligible (no-steal): writing them back would
  // put uncommitted bytes in the data file. The exclusive table latch held
  // by the caller keeps every reader out of the page table, so pin counts
  // cannot rise underneath the scan.
  std::lock_guard<std::mutex> lock(lru_mu_);
  bool saw_txn_dirty = false;
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    uint32_t victim = *it;
    auto fit = frames_.find(victim);
    if (fit == frames_.end() ||
        fit->second.pin_count.load(std::memory_order_relaxed) > 0) {
      continue;
    }
    Frame& f = fit->second;
    if (f.txn_dirty) {
      saw_txn_dirty = true;
      continue;
    }
    if (f.dirty) {
      OXML_RETURN_NOT_OK(backend_->WritePage(victim, f.data.get()));
    }
    lru_.erase(std::next(it).base());
    frames_.erase(fit);
    return Status::OK();
  }
  if (saw_txn_dirty) {
    // Every evictable frame belongs to the open transaction; grow the pool
    // past its capacity for the transaction's lifetime rather than steal.
    return Status::OK();
  }
  return Status::Internal("buffer pool exhausted: all frames pinned");
}

void BufferPool::CaptureUndo(uint32_t page_id, const Frame& frame) {
  if (!in_txn_ || undo_.count(page_id) > 0) return;
  TxnUndo u;
  u.before = std::shared_ptr<char[]>(new char[kPageSize]);
  std::memcpy(u.before.get(), frame.data.get(), kPageSize);
  u.was_dirty = frame.dirty;
  if (mvcc_enabled_) {
    // Publish the pre-image as a committed page version, sharing the undo
    // buffer. Its base LSN is the newest committed LSN — the state this
    // transaction started from, which is also <= the snapshot LSN of every
    // reader statement that can overlap it (commits are serialized, so the
    // counter cannot advance while this transaction is open).
    std::lock_guard<std::mutex> vlock(versions_mu_);
    auto& chain = versions_[page_id];
    chain.push_back(
        {u.before, last_commit_lsn_.load(std::memory_order_relaxed)});
    versions_published_.fetch_add(1, std::memory_order_relaxed);
    uint64_t len = chain.size();
    uint64_t prev = version_chain_max_.load(std::memory_order_relaxed);
    while (prev < len && !version_chain_max_.compare_exchange_weak(
                             prev, len, std::memory_order_relaxed)) {
    }
  }
  undo_.emplace(page_id, std::move(u));
}

Result<PageHandle> BufferPool::ServeVersion(uint32_t page_id,
                                            uint64_t snap_lsn) {
  std::shared_ptr<char[]> image;
  {
    std::lock_guard<std::mutex> vlock(versions_mu_);
    auto it = versions_.find(page_id);
    if (it != versions_.end()) {
      // Newest version not newer than the snapshot. Chains are in
      // publication (= LSN) order, so scan from the back.
      for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
        if (rit->base_lsn <= snap_lsn) {
          image = rit->image;
          break;
        }
      }
    }
  }
  if (image == nullptr) {
    // Unreachable for pages the committed state references: every txn-dirty
    // frame with committed history has a published pre-image whose base LSN
    // is the snapshot every overlapping reader holds. Only a page born
    // inside the open transaction lacks one, and committed structures never
    // point at it — surfacing an error beats serving uncommitted bytes.
    return Status::Internal("page " + std::to_string(page_id) +
                            " has no version visible at snapshot LSN " +
                            std::to_string(snap_lsn));
  }
  snapshot_reads_.fetch_add(1, std::memory_order_relaxed);
  return PageHandle(std::move(image), page_id);
}

Result<PageHandle> BufferPool::NewPage() {
  // Exclusive: allocation mutates both the backend and the page table.
  std::unique_lock<std::shared_mutex> lock(table_mu_);
  OXML_ASSIGN_OR_RETURN(uint32_t id, backend_->AllocatePage());
  OXML_RETURN_NOT_OK(EnsureCapacity());
  Frame& frame = frames_[id];  // in-place: Frame holds an atomic
  frame.data = std::make_unique<char[]>(kPageSize);
  std::memset(frame.data.get(), 0, kPageSize);
  frame.page_id = id;
  frame.pin_count.store(1, std::memory_order_relaxed);
  frame.dirty = true;  // a fresh page must eventually reach the backend
  if (in_txn_) {
    frame.txn_dirty = true;
    ++txn_dirty_count_;
    TxnUndo u;
    u.is_new = true;  // rollback zeroes the page instead of restoring
    undo_.emplace(id, std::move(u));
  }
  return PageHandle(this, id, frame.data.get());
}

Result<PageHandle> BufferPool::FetchPage(uint32_t page_id) {
  const ReadSnapshot* snap = mvcc_enabled_ ? CurrentReadSnapshot() : nullptr;
  {
    // Fast path: a resident page is pinned under the shared latch, so any
    // number of readers fault-free pages in parallel. Frame addresses are
    // stable across rehashes (unordered_map) and eviction only erases
    // unpinned frames under the exclusive latch, so the returned data
    // pointer stays valid for the life of the pin.
    //
    // Disabled for the owner of an open transaction: undo capture mutates
    // the unsynchronized undo_ map, and the txn owner's own parallel-scan
    // workers (which never take the statement latch) reach here
    // concurrently, so every transactional fetch must serialize through
    // the exclusive path below. in_txn_ only flips under the exclusive
    // table latch, making this shared-latched read race-free.
    //
    // Snapshot readers (tl snapshot set; only foreign threads carry one
    // while a transaction is open) stay on the shared path: a resident
    // frame the transaction has NOT dirtied still holds committed bytes —
    // the statement latch keeps writer statements out while reader
    // statements run, so txn_dirty cannot flip underneath us — and a
    // txn-dirty frame is served from the published version chain instead.
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    if (!in_txn_) {
      auto it = frames_.find(page_id);
      if (it != frames_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        Frame& f = it->second;
        f.pin_count.fetch_add(1, std::memory_order_relaxed);
        LruRemove(&f);
        return PageHandle(this, page_id, f.data.get());
      }
    } else if (snap != nullptr) {
      auto it = frames_.find(page_id);
      if (it != frames_.end()) {
        Frame& f = it->second;
        if (f.txn_dirty) return ServeVersion(page_id, snap->lsn);
        hits_.fetch_add(1, std::memory_order_relaxed);
        f.pin_count.fetch_add(1, std::memory_order_relaxed);
        LruRemove(&f);
        return PageHandle(this, page_id, f.data.get());
      }
      // Non-resident: no-steal keeps txn-dirty frames resident, so the
      // backend copy is committed state. Fault it in below — without
      // capturing undo, which belongs to the transaction owner alone.
    }
  }
  std::unique_lock<std::shared_mutex> lock(table_mu_);
  // Another thread may have faulted the page in while we upgraded.
  auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    Frame& f = it->second;
    if (snap != nullptr && in_txn_ && f.txn_dirty) {
      return ServeVersion(page_id, snap->lsn);
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (snap == nullptr) CaptureUndo(page_id, f);
    f.pin_count.fetch_add(1, std::memory_order_relaxed);
    LruRemove(&f);
    return PageHandle(this, page_id, f.data.get());
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  OXML_RETURN_NOT_OK(EnsureCapacity());
  auto data = std::make_unique<char[]>(kPageSize);
  OXML_RETURN_NOT_OK(backend_->ReadPage(page_id, data.get()));
  Frame& frame = frames_[page_id];
  frame.data = std::move(data);
  frame.page_id = page_id;
  frame.pin_count.store(1, std::memory_order_relaxed);
  if (snap == nullptr) CaptureUndo(page_id, frame);
  return PageHandle(this, page_id, frame.data.get());
}

void BufferPool::Unpin(uint32_t page_id, bool dirty) {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  auto it = frames_.find(page_id);
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (dirty) {
    // Only writers mark pages dirty, and the statement latch serializes
    // them against every reader, so these plain fields race with nothing.
    f.dirty = true;
    if (in_txn_ && !f.txn_dirty) {
      f.txn_dirty = true;
      ++txn_dirty_count_;
    }
    return;  // MarkDirty does not drop the pin
  }
  int prev = f.pin_count.load(std::memory_order_relaxed);
  while (prev > 0 && !f.pin_count.compare_exchange_weak(
                         prev, prev - 1, std::memory_order_relaxed)) {
  }
  if (prev == 1) LruAdd(page_id, &f);
}

Status BufferPool::FlushAll() {
  std::unique_lock<std::shared_mutex> lock(table_mu_);
  for (auto& [id, frame] : frames_) {
    if (frame.dirty && !frame.txn_dirty) {
      OXML_RETURN_NOT_OK(backend_->WritePage(id, frame.data.get()));
      frame.dirty = false;
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------ transactions

Status BufferPool::BeginTxn() {
  std::unique_lock<std::shared_mutex> lock(table_mu_);
  if (in_txn_) {
    return Status::InvalidArgument("a transaction is already open");
  }
  in_txn_ = true;
  txn_dirty_count_ = 0;
  undo_.clear();
  return Status::OK();
}

Status BufferPool::CommitTxn() {
  std::unique_lock<std::shared_mutex> lock(table_mu_);
  if (!in_txn_) {
    return Status::InvalidArgument("no transaction is open");
  }
  if (txn_dirty_count_ == 0) {
    // Read-only transaction: nothing to log, nothing to make durable, and
    // the commit LSN does not advance (the committed state is unchanged).
    in_txn_ = false;
    undo_.clear();
    RetireVersions();
    return Status::OK();
  }
  // The LSN this commit installs. Commits are serialized by the statement
  // latch, so a simple increment of the newest committed LSN is monotone;
  // it is only published after the commit record succeeds, so a failed
  // commit leaves the snapshot clock untouched.
  uint64_t commit_lsn = last_commit_lsn_.load(std::memory_order_relaxed) + 1;
  if (wal_ != nullptr) {
    // Log images in page order so replay and crash tests are deterministic.
    std::vector<uint32_t> ids;
    ids.reserve(txn_dirty_count_);
    for (const auto& [id, frame] : frames_) {
      if (frame.txn_dirty) ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    for (uint32_t id : ids) {
      OXML_RETURN_NOT_OK(wal_->AppendPageImage(id, frames_[id].data.get()));
    }
    // The commit record makes the transaction real. On failure the txn is
    // left open so the caller can roll back — recovery will ignore the
    // orphaned images above.
    OXML_RETURN_NOT_OK(wal_->Commit(commit_lsn));
  }
  for (auto& [id, frame] : frames_) {
    frame.txn_dirty = false;
  }
  last_commit_lsn_.store(commit_lsn, std::memory_order_release);
  in_txn_ = false;
  txn_dirty_count_ = 0;
  undo_.clear();
  RetireVersions();
  return Status::OK();
}

void BufferPool::RetireVersions() {
  // Drop the transaction's published versions. Safe without waiting for
  // readers: commit/rollback run under the exclusive statement latch, so no
  // reader statement is in flight, and any version-backed handle that
  // somehow outlives its statement keeps its buffer alive via shared_ptr.
  std::lock_guard<std::mutex> vlock(versions_mu_);
  versions_.clear();
}

Status BufferPool::RollbackTxn() {
  std::unique_lock<std::shared_mutex> lock(table_mu_);
  if (!in_txn_) {
    return Status::InvalidArgument("no transaction is open");
  }
  for (auto& [id, u] : undo_) {
    auto it = frames_.find(id);
    if (it == frames_.end()) {
      // An undo-tracked clean frame may have been evicted (it was read, not
      // written, inside the txn — the backend still holds its last committed
      // image). Nothing to restore.
      continue;
    }
    Frame& f = it->second;
    if (u.is_new) {
      // The page did not exist before the transaction. The backend already
      // allocated it (zeroed); zero the frame and mark it clean so nothing
      // is written back. The page id is leaked until reuse, never exposed.
      std::memset(f.data.get(), 0, kPageSize);
      f.dirty = false;
      f.txn_dirty = false;
      continue;
    }
    std::memcpy(f.data.get(), u.before.get(), kPageSize);
    f.dirty = u.was_dirty;
    f.txn_dirty = false;
  }
  in_txn_ = false;
  txn_dirty_count_ = 0;
  undo_.clear();
  RetireVersions();
  return Status::OK();
}

}  // namespace oxml
