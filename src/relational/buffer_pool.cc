#include "src/relational/buffer_pool.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace oxml {

// ---------------------------------------------------------------- backends

Result<uint32_t> MemoryBackend::AllocatePage() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<uint32_t>(pages_.size() - 1);
}

Status MemoryBackend::ReadPage(uint32_t id, char* buf) {
  if (id >= pages_.size()) return Status::OutOfRange("bad page id");
  std::memcpy(buf, pages_[id].get(), kPageSize);
  return Status::OK();
}

Status MemoryBackend::WritePage(uint32_t id, const char* buf) {
  if (id >= pages_.size()) return Status::OutOfRange("bad page id");
  std::memcpy(pages_[id].get(), buf, kPageSize);
  return Status::OK();
}

Result<std::unique_ptr<FileBackend>> FileBackend::Open(
    const std::string& path, bool truncate) {
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  auto backend = std::unique_ptr<FileBackend>(new FileBackend(fd, path));
  if (!truncate) {
    off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) {
      return Status::IOError("lseek(" + path + "): " + std::strerror(errno));
    }
    if (size % static_cast<off_t>(kPageSize) != 0) {
      return Status::IOError(path + " is not page-aligned (corrupt?)");
    }
    backend->page_count_ = static_cast<uint32_t>(size / kPageSize);
  }
  return backend;
}

FileBackend::~FileBackend() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint32_t> FileBackend::AllocatePage() {
  uint32_t id = page_count_;
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  OXML_RETURN_NOT_OK(WritePage(id, zeros));
  ++page_count_;
  return id;
}

Status FileBackend::ReadPage(uint32_t id, char* buf) {
  ssize_t n = ::pread(fd_, buf, kPageSize,
                      static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pread failed for page " + std::to_string(id));
  }
  return Status::OK();
}

Status FileBackend::WritePage(uint32_t id, const char* buf) {
  ssize_t n = ::pwrite(fd_, buf, kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite failed for page " + std::to_string(id));
  }
  return Status::OK();
}

// ------------------------------------------------------------- page handle

PageHandle::PageHandle(BufferPool* pool, uint32_t page_id, char* data)
    : pool_(pool), page_id_(page_id), data_(data) {}

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), page_id_(other.page_id_), data_(other.data_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  if (pool_ != nullptr) pool_->Unpin(page_id_, /*dirty=*/true);
  // Keep the pin: Unpin(dirty) only sets the dirty bit when pinned.
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(page_id_, /*dirty=*/false);
    pool_ = nullptr;
  }
}

// ------------------------------------------------------------- buffer pool

BufferPool::BufferPool(std::unique_ptr<StorageBackend> backend,
                       size_t capacity)
    : backend_(std::move(backend)), capacity_(capacity) {}

BufferPool::~BufferPool() { (void)FlushAll(); }

Status BufferPool::EnsureCapacity() {
  if (capacity_ == 0 || frames_.size() < capacity_) return Status::OK();
  // Evict the least recently used unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    uint32_t victim = *it;
    auto fit = frames_.find(victim);
    if (fit == frames_.end() || fit->second.pin_count > 0) continue;
    Frame& f = fit->second;
    if (f.dirty) {
      OXML_RETURN_NOT_OK(backend_->WritePage(victim, f.data.get()));
    }
    lru_.erase(std::next(it).base());
    frames_.erase(fit);
    return Status::OK();
  }
  return Status::Internal("buffer pool exhausted: all frames pinned");
}

Result<PageHandle> BufferPool::NewPage() {
  OXML_ASSIGN_OR_RETURN(uint32_t id, backend_->AllocatePage());
  OXML_RETURN_NOT_OK(EnsureCapacity());
  Frame frame;
  frame.data = std::make_unique<char[]>(kPageSize);
  std::memset(frame.data.get(), 0, kPageSize);
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = true;  // a fresh page must eventually reach the backend
  char* data = frame.data.get();
  frames_.emplace(id, std::move(frame));
  return PageHandle(this, id, data);
}

Result<PageHandle> BufferPool::FetchPage(uint32_t page_id) {
  auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    ++hits_;
    Frame& f = it->second;
    ++f.pin_count;
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    return PageHandle(this, page_id, f.data.get());
  }
  ++misses_;
  OXML_RETURN_NOT_OK(EnsureCapacity());
  Frame frame;
  frame.data = std::make_unique<char[]>(kPageSize);
  OXML_RETURN_NOT_OK(backend_->ReadPage(page_id, frame.data.get()));
  frame.page_id = page_id;
  frame.pin_count = 1;
  char* data = frame.data.get();
  frames_.emplace(page_id, std::move(frame));
  return PageHandle(this, page_id, data);
}

void BufferPool::Unpin(uint32_t page_id, bool dirty) {
  auto it = frames_.find(page_id);
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (dirty) {
    f.dirty = true;
    return;  // MarkDirty does not drop the pin
  }
  if (f.pin_count > 0) --f.pin_count;
  if (f.pin_count == 0 && !f.in_lru) {
    lru_.push_front(page_id);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      OXML_RETURN_NOT_OK(backend_->WritePage(id, frame.data.get()));
      frame.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace oxml
