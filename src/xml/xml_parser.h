#ifndef OXML_XML_XML_PARSER_H_
#define OXML_XML_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "src/common/result.h"
#include "src/xml/xml_node.h"

namespace oxml {

/// Options controlling the recursive-descent XML parser.
struct XmlParseOptions {
  /// Drop text nodes that consist only of whitespace (typical for
  /// pretty-printed documents whose whitespace is not data).
  bool skip_insignificant_whitespace = true;
  /// Keep comment nodes in the tree.
  bool keep_comments = true;
  /// Keep processing-instruction nodes in the tree.
  bool keep_processing_instructions = true;
};

/// Parses an XML 1.0 subset: prolog, elements, attributes, character data,
/// CDATA sections, comments, processing instructions, the five predefined
/// entities and numeric character references. DTDs are skipped (not
/// validated). Returns a ParseError status with line/column on bad input.
Result<std::unique_ptr<XmlDocument>> ParseXml(
    std::string_view input, const XmlParseOptions& options = {});

/// Reads the file at `path` and parses it.
Result<std::unique_ptr<XmlDocument>> ParseXmlFile(
    const std::string& path, const XmlParseOptions& options = {});

}  // namespace oxml

#endif  // OXML_XML_XML_PARSER_H_
