#ifndef OXML_XML_XML_GENERATOR_H_
#define OXML_XML_XML_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/xml/xml_node.h"

namespace oxml {

/// Knobs of the synthetic XML generator. This is our stand-in for the IBM
/// XML Generator used in the paper: it controls the same document-shape
/// parameters the paper's datasets varied (node count, depth, fan-out, text
/// share, vocabulary).
struct XmlGeneratorOptions {
  uint64_t seed = 42;
  /// Approximate number of DOM nodes (elements + text) to generate.
  size_t target_nodes = 10000;
  /// Maximum element nesting depth (root element is depth 1).
  int max_depth = 8;
  /// Children per element are drawn uniformly from [1, max_fanout].
  int max_fanout = 8;
  /// Distinct element tag names.
  int tag_vocabulary = 20;
  /// Probability that an element carries an `id`-style attribute.
  double attribute_probability = 0.3;
  /// Probability that a leaf position becomes a text node.
  double text_probability = 0.7;
  /// Words per text node are drawn uniformly from [1, max_text_words].
  int max_text_words = 8;
};

/// Generates a random document. Deterministic in `options.seed`.
std::unique_ptr<XmlDocument> GenerateXml(const XmlGeneratorOptions& options);

/// Options for the news-style generator (NITF-like), matching the paper's
/// motivating workload: a news document whose section/paragraph order is
/// semantically meaningful.
struct NewsGeneratorOptions {
  uint64_t seed = 42;
  int sections = 10;
  int paragraphs_per_section = 10;
  int sentences_per_paragraph = 3;
};

/// Generates a news document:
///
///   <nitf>
///     <head><title/><dateline/><byline/></head>
///     <body>
///       <section id="s1"><title/><para class="...">text</para>...</section>
///       ...
///     </body>
///   </nitf>
std::unique_ptr<XmlDocument> GenerateNewsXml(const NewsGeneratorOptions& opts);

/// Options for the XMark-style auction generator — the standard XML
/// benchmark document shape of the paper's era: a site with regions
/// containing items, open auctions with growing bid histories, and people
/// with profiles. Ordered data appears naturally (bid sequences, item
/// descriptions as ordered paragraph lists).
struct AuctionGeneratorOptions {
  uint64_t seed = 42;
  int items_per_region = 20;   // x 3 regions
  int open_auctions = 30;      // each with an ordered bid history
  int bids_per_auction = 8;
  int people = 25;
};

/// Generates an XMark-like auction site document:
///
///   <site>
///     <regions><africa><item id="..."><name/><description><parlist>
///       <listitem>...</listitem>...</parlist></description></item>...
///     </africa><asia>...</asia><europe>...</europe></regions>
///     <open_auctions><open_auction id="...."><initial/>
///       <bidder><date/><personref person="..."/><increase/></bidder>...
///       <current/></open_auction>...</open_auctions>
///     <people><person id="..."><name/><emailaddress/></person>...</people>
///   </site>
std::unique_ptr<XmlDocument> GenerateAuctionXml(
    const AuctionGeneratorOptions& opts);

/// Generates a flat "wide" document: one root with `n` leaf children, used
/// by the update benchmarks to isolate sibling-renumbering costs.
std::unique_ptr<XmlDocument> GenerateWideXml(size_t n, uint64_t seed = 42);

/// Generates a "deep" chain document of the given depth (each element has
/// one element child plus one text leaf), used by the Dewey key-length
/// ablation.
std::unique_ptr<XmlDocument> GenerateDeepXml(size_t depth, uint64_t seed = 42);

}  // namespace oxml

#endif  // OXML_XML_XML_GENERATOR_H_
