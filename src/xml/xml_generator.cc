#include "src/xml/xml_generator.h"

#include <string>

#include "src/common/random.h"

namespace oxml {
namespace {

const char* const kWords[] = {
    "market", "report", "city",    "council", "election", "storm",
    "series", "player", "science", "museum",  "travel",   "economy",
    "energy", "health", "policy",  "review",  "update",   "analysis",
    "local",  "global", "summit",  "budget",  "quarter",  "season",
};
constexpr int kNumWords = static_cast<int>(sizeof(kWords) / sizeof(kWords[0]));

std::string RandomSentence(Random* rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out.push_back(' ');
    out.append(kWords[rng->Uniform(0, kNumWords - 1)]);
  }
  return out;
}

class Generator {
 public:
  explicit Generator(const XmlGeneratorOptions& options)
      : options_(options), rng_(options.seed) {}

  std::unique_ptr<XmlDocument> Generate() {
    auto doc = std::make_unique<XmlDocument>();
    XmlNode* root = doc->root()->AppendChild(XmlNode::Element("root"));
    nodes_made_ = 1;
    // Keep expanding the root until we are close to the target size; each
    // Expand call adds one subtree of bounded depth.
    while (nodes_made_ < options_.target_nodes) {
      Expand(root, 2);
    }
    return doc;
  }

 private:
  std::string RandomTag() {
    return "tag" + std::to_string(rng_.Uniform(0, options_.tag_vocabulary - 1));
  }

  void Expand(XmlNode* parent, int depth) {
    XmlNode* element = parent->AppendChild(XmlNode::Element(RandomTag()));
    ++nodes_made_;
    if (rng_.Chance(options_.attribute_probability)) {
      element->SetAttribute("id", "n" + std::to_string(next_id_++));
      ++nodes_made_;
    }
    if (depth >= options_.max_depth || nodes_made_ >= options_.target_nodes) {
      MaybeAddText(element);
      return;
    }
    int fanout = static_cast<int>(rng_.Uniform(1, options_.max_fanout));
    for (int i = 0; i < fanout && nodes_made_ < options_.target_nodes; ++i) {
      if (rng_.Chance(options_.text_probability) && i == fanout - 1) {
        MaybeAddText(element);
      } else {
        Expand(element, depth + 1);
      }
    }
    if (element->children().empty()) MaybeAddText(element);
  }

  void MaybeAddText(XmlNode* element) {
    int words = static_cast<int>(rng_.Uniform(1, options_.max_text_words));
    element->AppendChild(XmlNode::Text(RandomSentence(&rng_, words)));
    ++nodes_made_;
  }

  XmlGeneratorOptions options_;
  Random rng_;
  size_t nodes_made_ = 0;
  size_t next_id_ = 0;
};

}  // namespace

std::unique_ptr<XmlDocument> GenerateXml(const XmlGeneratorOptions& options) {
  Generator g(options);
  return g.Generate();
}

std::unique_ptr<XmlDocument> GenerateNewsXml(
    const NewsGeneratorOptions& opts) {
  Random rng(opts.seed);
  auto doc = std::make_unique<XmlDocument>();
  XmlNode* nitf = doc->root()->AppendChild(XmlNode::Element("nitf"));

  XmlNode* head = nitf->AppendChild(XmlNode::Element("head"));
  XmlNode* title = head->AppendChild(XmlNode::Element("title"));
  title->AppendChild(XmlNode::Text(RandomSentence(&rng, 4)));
  XmlNode* dateline = head->AppendChild(XmlNode::Element("dateline"));
  dateline->AppendChild(XmlNode::Text("2002-06-0" +
                                      std::to_string(rng.Uniform(1, 9))));
  XmlNode* byline = head->AppendChild(XmlNode::Element("byline"));
  byline->AppendChild(XmlNode::Text(RandomSentence(&rng, 2)));

  XmlNode* body = nitf->AppendChild(XmlNode::Element("body"));
  for (int s = 0; s < opts.sections; ++s) {
    XmlNode* section = body->AppendChild(XmlNode::Element("section"));
    section->SetAttribute("id", "s" + std::to_string(s + 1));
    XmlNode* st = section->AppendChild(XmlNode::Element("title"));
    st->AppendChild(XmlNode::Text(RandomSentence(&rng, 3)));
    for (int p = 0; p < opts.paragraphs_per_section; ++p) {
      XmlNode* para = section->AppendChild(XmlNode::Element("para"));
      if (rng.Chance(0.25)) para->SetAttribute("class", "lead");
      para->AppendChild(XmlNode::Text(
          RandomSentence(&rng, 6 * opts.sentences_per_paragraph)));
    }
  }
  return doc;
}

std::unique_ptr<XmlDocument> GenerateAuctionXml(
    const AuctionGeneratorOptions& opts) {
  Random rng(opts.seed);
  auto doc = std::make_unique<XmlDocument>();
  XmlNode* site = doc->root()->AppendChild(XmlNode::Element("site"));

  // Regions with items whose descriptions are ordered paragraph lists.
  XmlNode* regions = site->AppendChild(XmlNode::Element("regions"));
  int item_id = 0;
  for (const char* region_name : {"africa", "asia", "europe"}) {
    XmlNode* region = regions->AppendChild(XmlNode::Element(region_name));
    for (int i = 0; i < opts.items_per_region; ++i) {
      XmlNode* item = region->AppendChild(XmlNode::Element("item"));
      item->SetAttribute("id", "item" + std::to_string(item_id++));
      XmlNode* name = item->AppendChild(XmlNode::Element("name"));
      name->AppendChild(XmlNode::Text(RandomSentence(&rng, 2)));
      XmlNode* description =
          item->AppendChild(XmlNode::Element("description"));
      XmlNode* parlist = description->AppendChild(XmlNode::Element("parlist"));
      int paragraphs = static_cast<int>(rng.Uniform(1, 4));
      for (int p = 0; p < paragraphs; ++p) {
        XmlNode* li = parlist->AppendChild(XmlNode::Element("listitem"));
        li->AppendChild(XmlNode::Text(RandomSentence(&rng, 8)));
      }
      XmlNode* quantity = item->AppendChild(XmlNode::Element("quantity"));
      quantity->AppendChild(
          XmlNode::Text(std::to_string(rng.Uniform(1, 10))));
    }
  }

  // Open auctions: the bid history is the paper's canonical ordered list
  // (appends at the tail, "latest bid" = last child).
  XmlNode* auctions = site->AppendChild(XmlNode::Element("open_auctions"));
  for (int a = 0; a < opts.open_auctions; ++a) {
    XmlNode* auction = auctions->AppendChild(XmlNode::Element("open_auction"));
    auction->SetAttribute("id", "auction" + std::to_string(a));
    XmlNode* initial = auction->AppendChild(XmlNode::Element("initial"));
    double price = static_cast<double>(rng.Uniform(1, 100));
    initial->AppendChild(XmlNode::Text(std::to_string(price)));
    for (int b = 0; b < opts.bids_per_auction; ++b) {
      XmlNode* bidder = auction->AppendChild(XmlNode::Element("bidder"));
      XmlNode* date = bidder->AppendChild(XmlNode::Element("date"));
      date->AppendChild(XmlNode::Text(
          "2002-06-" + std::to_string(10 + b)));
      XmlNode* ref = bidder->AppendChild(XmlNode::Element("personref"));
      ref->SetAttribute(
          "person", "person" + std::to_string(rng.Uniform(
                                   0, opts.people > 0 ? opts.people - 1 : 0)));
      XmlNode* increase = bidder->AppendChild(XmlNode::Element("increase"));
      price += static_cast<double>(rng.Uniform(1, 20));
      increase->AppendChild(XmlNode::Text(std::to_string(price)));
    }
    XmlNode* current = auction->AppendChild(XmlNode::Element("current"));
    current->AppendChild(XmlNode::Text(std::to_string(price)));
  }

  // People.
  XmlNode* people = site->AppendChild(XmlNode::Element("people"));
  for (int p = 0; p < opts.people; ++p) {
    XmlNode* person = people->AppendChild(XmlNode::Element("person"));
    person->SetAttribute("id", "person" + std::to_string(p));
    XmlNode* name = person->AppendChild(XmlNode::Element("name"));
    name->AppendChild(XmlNode::Text(RandomSentence(&rng, 2)));
    XmlNode* email = person->AppendChild(XmlNode::Element("emailaddress"));
    email->AppendChild(
        XmlNode::Text("mailto:" + rng.Word(3, 8) + "@example.com"));
  }
  return doc;
}

std::unique_ptr<XmlDocument> GenerateWideXml(size_t n, uint64_t seed) {
  Random rng(seed);
  auto doc = std::make_unique<XmlDocument>();
  XmlNode* root = doc->root()->AppendChild(XmlNode::Element("root"));
  for (size_t i = 0; i < n; ++i) {
    XmlNode* item = root->AppendChild(XmlNode::Element("item"));
    item->AppendChild(XmlNode::Text(RandomSentence(&rng, 2)));
  }
  return doc;
}

std::unique_ptr<XmlDocument> GenerateDeepXml(size_t depth, uint64_t seed) {
  Random rng(seed);
  auto doc = std::make_unique<XmlDocument>();
  XmlNode* cur = doc->root()->AppendChild(XmlNode::Element("level0"));
  for (size_t d = 1; d < depth; ++d) {
    cur->AppendChild(XmlNode::Text(RandomSentence(&rng, 1)));
    cur = cur->AppendChild(XmlNode::Element("level" + std::to_string(d)));
  }
  cur->AppendChild(XmlNode::Text("leaf"));
  return doc;
}

}  // namespace oxml
