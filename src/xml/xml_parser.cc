#include "src/xml/xml_parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace oxml {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

bool IsWhitespaceOnly(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Hand-written XML scanner/parser. Tracks line/column for error messages.
class Parser {
 public:
  Parser(std::string_view input, const XmlParseOptions& options)
      : input_(input), options_(options) {}

  Result<std::unique_ptr<XmlDocument>> Parse() {
    auto doc = std::make_unique<XmlDocument>();
    OXML_RETURN_NOT_OK(ParseProlog());
    // Misc (comments/PIs) before the root element were handled by prolog.
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    OXML_RETURN_NOT_OK(ParseElement(doc->root()));
    // Trailing misc.
    while (!AtEnd()) {
      SkipWhitespace();
      if (AtEnd()) break;
      if (Match("<!--")) {
        OXML_RETURN_NOT_OK(ParseComment(doc->root()));
      } else if (Match("<?")) {
        OXML_RETURN_NOT_OK(ParsePi(doc->root()));
      } else {
        return Error("unexpected content after root element");
      }
    }
    if (doc->root_element() == nullptr) {
      return Error("document has no root element");
    }
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  /// Consumes `token` if the input starts with it at the current position.
  bool Match(std::string_view token) {
    if (input_.substr(pos_).substr(0, token.size()) != token) return false;
    for (size_t i = 0; i < token.size(); ++i) Advance();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(const std::string& msg) const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " (line %zu, col %zu)", line_, col_);
    return Status::ParseError(msg + buf);
  }

  Status ParseProlog() {
    SkipWhitespace();
    if (Match("<?xml")) {
      // Skip the XML declaration up to "?>".
      while (!AtEnd() && !Match("?>")) Advance();
    }
    // Misc and doctype before root element.
    while (true) {
      SkipWhitespace();
      if (Match("<!--")) {
        OXML_RETURN_NOT_OK(SkipUntil("-->", "unterminated comment"));
      } else if (Match("<!DOCTYPE")) {
        OXML_RETURN_NOT_OK(SkipDoctype());
      } else if (PeekAt(0) == '<' && PeekAt(1) == '?') {
        Advance();
        Advance();
        OXML_RETURN_NOT_OK(SkipUntil("?>", "unterminated PI"));
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Status SkipUntil(std::string_view token, const std::string& err) {
    while (!AtEnd()) {
      if (Match(token)) return Status::OK();
      Advance();
    }
    return Error(err);
  }

  Status SkipDoctype() {
    // Skip until the matching '>' honoring an optional internal subset.
    int bracket_depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth <= 0) {
        Advance();
        return Status::OK();
      }
      Advance();
    }
    return Error("unterminated DOCTYPE");
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) {
      name.push_back(Peek());
      Advance();
    }
    return name;
  }

  /// Decodes entity and character references into `out`.
  Status AppendReference(std::string* out) {
    // Called just after consuming '&'.
    size_t start = pos_;
    while (!AtEnd() && Peek() != ';' && pos_ - start < 12) Advance();
    if (AtEnd()) return Error("unterminated entity");
    // The scan is capped at 12 characters (longer than any reference we
    // accept); hitting the cap with more input left is a length problem,
    // not a missing terminator.
    if (Peek() != ';') return Error("entity too long");
    std::string_view ref = input_.substr(start, pos_ - start);
    Advance();  // consume ';'
    if (ref == "lt") {
      out->push_back('<');
    } else if (ref == "gt") {
      out->push_back('>');
    } else if (ref == "amp") {
      out->push_back('&');
    } else if (ref == "apos") {
      out->push_back('\'');
    } else if (ref == "quot") {
      out->push_back('"');
    } else if (!ref.empty() && ref[0] == '#') {
      int base = 10;
      std::string digits(ref.substr(1));
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits.erase(0, 1);
      }
      char* end = nullptr;
      long code = std::strtol(digits.c_str(), &end, base);
      if (digits.empty() || end == nullptr || *end != '\0') {
        return Error("bad character reference &" + std::string(ref) + ";");
      }
      // Unicode range checks: AppendUtf8 would otherwise emit byte
      // sequences no conforming decoder accepts (planes above U+10FFFF,
      // UTF-16 surrogate halves) or a stray NUL.
      if (code <= 0 || code > 0x10FFFF || (code >= 0xD800 && code <= 0xDFFF)) {
        return Error("character reference out of range &" + std::string(ref) +
                     ";");
      }
      AppendUtf8(static_cast<uint32_t>(code), out);
    } else {
      return Error("unknown entity &" + std::string(ref) + ";");
    }
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        Advance();
        OXML_RETURN_NOT_OK(AppendReference(&value));
      } else if (Peek() == '<') {
        return Error("'<' not allowed in attribute value");
      } else {
        value.push_back(Peek());
        Advance();
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    Advance();  // closing quote
    return value;
  }

  /// Parses one element (the '<' has not been consumed) and appends it to
  /// `parent`.
  Status ParseElement(XmlNode* parent) {
    if (!Match("<")) return Error("expected '<'");
    OXML_ASSIGN_OR_RETURN(std::string tag, ParseName());
    XmlNode* element = parent->AppendChild(XmlNode::Element(std::move(tag)));

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Match("/>")) return Status::OK();  // empty element
      if (Match(">")) break;
      OXML_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (!Match("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      OXML_ASSIGN_OR_RETURN(std::string attr_value, ParseAttributeValue());
      if (element->attribute(attr_name) != nullptr) {
        return Error("duplicate attribute '" + attr_name + "'");
      }
      element->SetAttribute(std::move(attr_name), std::move(attr_value));
    }

    // Content.
    OXML_RETURN_NOT_OK(ParseContent(element));

    // End tag: ParseContent stops right after "</".
    OXML_ASSIGN_OR_RETURN(std::string end_tag, ParseName());
    if (end_tag != element->name()) {
      return Error("mismatched end tag </" + end_tag + "> for <" +
                   element->name() + ">");
    }
    SkipWhitespace();
    if (!Match(">")) return Error("expected '>' in end tag");
    return Status::OK();
  }

  Status ParseContent(XmlNode* element) {
    std::string text;
    auto flush_text = [&]() {
      if (text.empty()) return;
      if (!options_.skip_insignificant_whitespace || !IsWhitespaceOnly(text)) {
        element->AppendChild(XmlNode::Text(std::move(text)));
      }
      text.clear();
    };

    while (true) {
      if (AtEnd()) return Error("unterminated element <" + element->name() +
                                ">");
      if (Peek() == '<') {
        if (Match("</")) {
          flush_text();
          return Status::OK();
        }
        if (Match("<!--")) {
          flush_text();
          OXML_RETURN_NOT_OK(ParseComment(element));
          continue;
        }
        if (Match("<![CDATA[")) {
          size_t start = pos_;
          OXML_RETURN_NOT_OK(SkipUntil("]]>", "unterminated CDATA"));
          text.append(input_.substr(start, pos_ - 3 - start));
          continue;
        }
        if (Match("<?")) {
          flush_text();
          OXML_RETURN_NOT_OK(ParsePi(element));
          continue;
        }
        flush_text();
        OXML_RETURN_NOT_OK(ParseElement(element));
        continue;
      }
      if (Peek() == '&') {
        Advance();
        OXML_RETURN_NOT_OK(AppendReference(&text));
        continue;
      }
      text.push_back(Peek());
      Advance();
    }
  }

  /// Called just after "<!--" was consumed.
  Status ParseComment(XmlNode* parent) {
    size_t start = pos_;
    OXML_RETURN_NOT_OK(SkipUntil("-->", "unterminated comment"));
    if (options_.keep_comments) {
      parent->AppendChild(
          XmlNode::Comment(std::string(input_.substr(start, pos_ - 3 - start))));
    }
    return Status::OK();
  }

  /// Called just after "<?" was consumed.
  Status ParsePi(XmlNode* parent) {
    OXML_ASSIGN_OR_RETURN(std::string target, ParseName());
    SkipWhitespace();
    size_t start = pos_;
    OXML_RETURN_NOT_OK(SkipUntil("?>", "unterminated PI"));
    if (options_.keep_processing_instructions) {
      parent->AppendChild(XmlNode::ProcessingInstruction(
          std::move(target),
          std::string(input_.substr(start, pos_ - 2 - start))));
    }
    return Status::OK();
  }

  std::string_view input_;
  XmlParseOptions options_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

}  // namespace

Result<std::unique_ptr<XmlDocument>> ParseXml(std::string_view input,
                                              const XmlParseOptions& options) {
  Parser parser(input, options);
  return parser.Parse();
}

Result<std::unique_ptr<XmlDocument>> ParseXmlFile(
    const std::string& path, const XmlParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string contents = buf.str();
  return ParseXml(contents, options);
}

}  // namespace oxml
