#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

void Indent(std::string* out, int depth, int indent) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(depth * indent), ' ');
}

void WriteNode(const XmlNode& node, const XmlWriteOptions& options, int depth,
               std::string* out) {
  switch (node.kind()) {
    case XmlNodeKind::kDocument: {
      bool first = true;
      for (const auto& c : node.children()) {
        if (!first && options.indent > 0) out->push_back('\n');
        WriteNode(*c, options, depth, out);
        first = false;
      }
      return;
    }
    case XmlNodeKind::kElement: {
      out->push_back('<');
      out->append(node.name());
      for (const XmlAttribute& a : node.attributes()) {
        out->push_back(' ');
        out->append(a.name);
        out->append("=\"");
        out->append(EscapeXml(a.value, /*in_attribute=*/true));
        out->push_back('"');
      }
      if (node.children().empty()) {
        out->append("/>");
        return;
      }
      out->push_back('>');
      bool only_text = true;
      for (const auto& c : node.children()) {
        if (!c->is_text()) only_text = false;
      }
      for (const auto& c : node.children()) {
        if (!only_text) Indent(out, depth + 1, options.indent);
        WriteNode(*c, options, depth + 1, out);
      }
      if (!only_text) Indent(out, depth, options.indent);
      out->append("</");
      out->append(node.name());
      out->push_back('>');
      return;
    }
    case XmlNodeKind::kText:
      out->append(EscapeXml(node.value()));
      return;
    case XmlNodeKind::kComment:
      out->append("<!--");
      out->append(node.value());
      out->append("-->");
      return;
    case XmlNodeKind::kProcessingInstruction:
      out->append("<?");
      out->append(node.name());
      if (!node.value().empty()) {
        out->push_back(' ');
        out->append(node.value());
      }
      out->append("?>");
      return;
    case XmlNodeKind::kAttribute:
      // Attribute rows never appear in a DOM tree.
      return;
  }
}

}  // namespace

std::string EscapeXml(std::string_view text, bool in_attribute) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      case '"':
        if (in_attribute) {
          out.append("&quot;");
        } else {
          out.push_back(c);
        }
        break;
      case '\'':
        if (in_attribute) {
          out.append("&apos;");
        } else {
          out.push_back(c);
        }
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string WriteXml(const XmlNode& node, const XmlWriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out.append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    if (options.indent > 0) out.push_back('\n');
  }
  WriteNode(node, options, 0, &out);
  return out;
}

std::string WriteXml(const XmlDocument& doc, const XmlWriteOptions& options) {
  return WriteXml(*doc.root(), options);
}

}  // namespace oxml
