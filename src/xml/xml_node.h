#ifndef OXML_XML_XML_NODE_H_
#define OXML_XML_XML_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace oxml {

/// Node kinds of the XML data model relevant to shredding. Attribute nodes
/// are materialized by the shredder (they live as plain name/value pairs on
/// elements in the DOM, matching XML's "attributes are unordered" rule).
enum class XmlNodeKind : uint8_t {
  kDocument = 0,
  kElement = 1,
  kText = 2,
  kComment = 3,
  kProcessingInstruction = 4,
  kAttribute = 5,  // only produced by the shredder, never in the DOM tree
};

const char* XmlNodeKindToString(XmlNodeKind kind);

/// A name="value" attribute on an element.
struct XmlAttribute {
  std::string name;
  std::string value;

  bool operator==(const XmlAttribute&) const = default;
};

/// A node in an in-memory XML tree. Children are owned and kept in document
/// order; `parent` is a non-owning back pointer maintained by the tree
/// mutation methods.
class XmlNode {
 public:
  explicit XmlNode(XmlNodeKind kind) : kind_(kind) {}
  XmlNode(XmlNodeKind kind, std::string name)
      : kind_(kind), name_(std::move(name)) {}
  XmlNode(XmlNodeKind kind, std::string name, std::string value)
      : kind_(kind), name_(std::move(name)), value_(std::move(value)) {}

  XmlNode(const XmlNode&) = delete;
  XmlNode& operator=(const XmlNode&) = delete;

  /// Convenience factories.
  static std::unique_ptr<XmlNode> Element(std::string tag) {
    return std::make_unique<XmlNode>(XmlNodeKind::kElement, std::move(tag));
  }
  static std::unique_ptr<XmlNode> Text(std::string text) {
    return std::make_unique<XmlNode>(XmlNodeKind::kText, "#text",
                                     std::move(text));
  }
  static std::unique_ptr<XmlNode> Comment(std::string text) {
    return std::make_unique<XmlNode>(XmlNodeKind::kComment, "#comment",
                                     std::move(text));
  }
  static std::unique_ptr<XmlNode> ProcessingInstruction(std::string target,
                                                        std::string data) {
    return std::make_unique<XmlNode>(XmlNodeKind::kProcessingInstruction,
                                     std::move(target), std::move(data));
  }

  XmlNodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == XmlNodeKind::kElement; }
  bool is_text() const { return kind_ == XmlNodeKind::kText; }

  /// Tag name for elements, "#text"/"#comment" markers otherwise, PI target
  /// for processing instructions.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Text content for text/comment nodes, PI data for PIs; empty for
  /// elements (element text lives in child text nodes).
  const std::string& value() const { return value_; }
  void set_value(std::string value) { value_ = std::move(value); }

  XmlNode* parent() const { return parent_; }

  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }
  size_t child_count() const { return children_.size(); }
  XmlNode* child(size_t i) const { return children_[i].get(); }

  const std::vector<XmlAttribute>& attributes() const { return attributes_; }

  /// Returns the attribute value or nullptr if absent.
  const std::string* attribute(std::string_view name) const;
  void SetAttribute(std::string name, std::string value);

  /// Appends `node` as the last child; returns a raw pointer to it.
  XmlNode* AppendChild(std::unique_ptr<XmlNode> node);

  /// Inserts `node` so that it becomes the child at index `pos`
  /// (0 <= pos <= child_count()).
  XmlNode* InsertChild(size_t pos, std::unique_ptr<XmlNode> node);

  /// Removes and returns the child at `pos`.
  std::unique_ptr<XmlNode> RemoveChild(size_t pos);

  /// Index of this node within its parent's child list; 0 for a root.
  size_t IndexInParent() const;

  /// First child element with the given tag, or nullptr.
  XmlNode* FirstChildElement(std::string_view tag) const;

  /// Depth-first search for the first element with the given tag,
  /// including this node.
  XmlNode* FindElement(std::string_view tag);

  /// Concatenation of all descendant text node values, in document order.
  std::string InnerText() const;

  /// Number of nodes in this subtree (this node + attributes materialized
  /// as nodes + all descendants); matches the shredder's row count.
  size_t SubtreeSize() const;

  /// Number of DOM nodes (no attribute rows), this node included.
  size_t TreeNodeCount() const;

  /// Maximum depth of the subtree rooted here (a leaf has depth 1).
  size_t SubtreeDepth() const;

  /// Deep copy of the subtree (parent pointer of the copy is null).
  std::unique_ptr<XmlNode> Clone() const;

  /// Structural equality: kind, name, value, attributes and children
  /// (recursively, order-sensitive — this is the ordered XML data model).
  bool StructurallyEqual(const XmlNode& other) const;

 private:
  XmlNodeKind kind_;
  std::string name_;
  std::string value_;
  XmlNode* parent_ = nullptr;
  std::vector<XmlAttribute> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

/// An XML document: owns the tree root (a kDocument node whose children are
/// the top-level comments/PIs and exactly one root element).
class XmlDocument {
 public:
  XmlDocument() : root_(std::make_unique<XmlNode>(XmlNodeKind::kDocument,
                                                  "#document")) {}

  XmlNode* root() const { return root_.get(); }

  /// The single top-level element, or nullptr for an empty document.
  XmlNode* root_element() const;

  size_t TotalNodes() const { return root_->SubtreeSize(); }

  bool StructurallyEqual(const XmlDocument& other) const {
    return root_->StructurallyEqual(*other.root_);
  }

 private:
  std::unique_ptr<XmlNode> root_;
};

}  // namespace oxml

#endif  // OXML_XML_XML_NODE_H_
