#ifndef OXML_XML_XML_WRITER_H_
#define OXML_XML_XML_WRITER_H_

#include <string>

#include "src/xml/xml_node.h"

namespace oxml {

/// Serialization options.
struct XmlWriteOptions {
  /// Pretty-print with this indent per level; 0 emits a compact document.
  int indent = 0;
  /// Emit an <?xml version="1.0"?> declaration.
  bool declaration = false;
};

/// Serializes a node subtree (or a whole document) back to XML text with the
/// required escaping. Round-trips with ParseXml for documents that carry no
/// insignificant whitespace.
std::string WriteXml(const XmlNode& node, const XmlWriteOptions& options = {});
std::string WriteXml(const XmlDocument& doc,
                     const XmlWriteOptions& options = {});

/// Escapes character data: & < > (and " ' when `in_attribute`).
std::string EscapeXml(std::string_view text, bool in_attribute = false);

}  // namespace oxml

#endif  // OXML_XML_XML_WRITER_H_
