#include "src/xml/xml_node.h"

#include <algorithm>
#include <cassert>

namespace oxml {

const char* XmlNodeKindToString(XmlNodeKind kind) {
  switch (kind) {
    case XmlNodeKind::kDocument:
      return "document";
    case XmlNodeKind::kElement:
      return "element";
    case XmlNodeKind::kText:
      return "text";
    case XmlNodeKind::kComment:
      return "comment";
    case XmlNodeKind::kProcessingInstruction:
      return "pi";
    case XmlNodeKind::kAttribute:
      return "attribute";
  }
  return "unknown";
}

const std::string* XmlNode::attribute(std::string_view name) const {
  for (const XmlAttribute& a : attributes_) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

void XmlNode::SetAttribute(std::string name, std::string value) {
  for (XmlAttribute& a : attributes_) {
    if (a.name == name) {
      a.value = std::move(value);
      return;
    }
  }
  attributes_.push_back({std::move(name), std::move(value)});
}

XmlNode* XmlNode::AppendChild(std::unique_ptr<XmlNode> node) {
  return InsertChild(children_.size(), std::move(node));
}

XmlNode* XmlNode::InsertChild(size_t pos, std::unique_ptr<XmlNode> node) {
  assert(pos <= children_.size());
  node->parent_ = this;
  XmlNode* raw = node.get();
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(pos),
                   std::move(node));
  return raw;
}

std::unique_ptr<XmlNode> XmlNode::RemoveChild(size_t pos) {
  assert(pos < children_.size());
  std::unique_ptr<XmlNode> out = std::move(children_[pos]);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(pos));
  out->parent_ = nullptr;
  return out;
}

size_t XmlNode::IndexInParent() const {
  if (parent_ == nullptr) return 0;
  const auto& siblings = parent_->children_;
  for (size_t i = 0; i < siblings.size(); ++i) {
    if (siblings[i].get() == this) return i;
  }
  assert(false && "node not found in parent's child list");
  return 0;
}

XmlNode* XmlNode::FirstChildElement(std::string_view tag) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->name() == tag) return c.get();
  }
  return nullptr;
}

XmlNode* XmlNode::FindElement(std::string_view tag) {
  if (is_element() && name_ == tag) return this;
  for (const auto& c : children_) {
    if (XmlNode* found = c->FindElement(tag)) return found;
  }
  return nullptr;
}

std::string XmlNode::InnerText() const {
  if (is_text()) return value_;
  std::string out;
  for (const auto& c : children_) {
    out += c->InnerText();
  }
  return out;
}

size_t XmlNode::SubtreeSize() const {
  size_t n = 1 + attributes_.size();
  for (const auto& c : children_) n += c->SubtreeSize();
  return n;
}

size_t XmlNode::TreeNodeCount() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->TreeNodeCount();
  return n;
}

size_t XmlNode::SubtreeDepth() const {
  size_t deepest = 0;
  for (const auto& c : children_) {
    deepest = std::max(deepest, c->SubtreeDepth());
  }
  return deepest + 1;
}

std::unique_ptr<XmlNode> XmlNode::Clone() const {
  auto copy = std::make_unique<XmlNode>(kind_, name_, value_);
  copy->attributes_ = attributes_;
  for (const auto& c : children_) {
    copy->AppendChild(c->Clone());
  }
  return copy;
}

bool XmlNode::StructurallyEqual(const XmlNode& other) const {
  if (kind_ != other.kind_ || name_ != other.name_ || value_ != other.value_) {
    return false;
  }
  if (attributes_ != other.attributes_) return false;
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->StructurallyEqual(*other.children_[i])) return false;
  }
  return true;
}

XmlNode* XmlDocument::root_element() const {
  for (const auto& c : root_->children()) {
    if (c->is_element()) return c.get();
  }
  return nullptr;
}

}  // namespace oxml
