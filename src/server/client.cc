#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace oxml {
namespace server {

namespace {
Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}
}  // namespace

Result<std::unique_ptr<OxmlClient>> OxmlClient::Connect(
    const ClientOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + options.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("connect " + options.host + ":" +
                      std::to_string(options.port));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options.recv_timeout_ms / 1000;
    tv.tv_usec = (options.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  std::unique_ptr<OxmlClient> client(new OxmlClient());
  client->fd_ = fd;
  client->fetch_batch_rows_ =
      options.fetch_batch_rows == 0 ? 1024 : options.fetch_batch_rows;

  WireWriter hello(FrameType::kHello);
  hello.PutU32(kWireProtocolVersion);
  hello.PutString(options.auth_token);
  OXML_ASSIGN_OR_RETURN(Frame reply, client->RoundTrip(hello.Frame()));
  if (reply.type != FrameType::kHelloOk) {
    return Status::Internal(std::string("unexpected handshake reply: ") +
                            FrameTypeToString(reply.type));
  }
  WireReader r(reply.body);
  OXML_ASSIGN_OR_RETURN(client->session_id_, r.U64());
  OXML_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kWireProtocolVersion) {
    return Status::Internal("server speaks protocol version " +
                            std::to_string(version));
  }
  return client;
}

OxmlClient::~OxmlClient() { Abort(); }

void OxmlClient::Abort() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Status OxmlClient::SendBytes(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ < 0) return Status::IOError("client is closed");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Result<Frame> OxmlClient::ReadFrame() {
  while (true) {
    Frame frame;
    OXML_ASSIGN_OR_RETURN(bool got, ExtractFrame(&read_buf_, &frame));
    if (got) return frame;
    if (fd_ < 0) return Status::IOError("client is closed");
    char buf[16384];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      read_buf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IOError("server closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("timed out waiting for a server reply");
    }
    return Errno("recv");
  }
}

Result<Frame> OxmlClient::RoundTrip(const std::string& frame) {
  OXML_RETURN_NOT_OK(SendBytes(frame));
  OXML_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
  if (reply.type == FrameType::kError) {
    WireReader r(reply.body);
    OXML_ASSIGN_OR_RETURN(uint64_t tag, r.U64());
    (void)tag;
    Status st;
    OXML_RETURN_NOT_OK(r.GetStatus(&st));
    if (st.ok()) return Status::Internal("error frame with OK status");
    return st;
  }
  return reply;
}

Result<ResultSet> OxmlClient::FetchAll(uint64_t tag,
                                       const Frame& header_frame) {
  if (header_frame.type != FrameType::kResultHeader) {
    return Status::Internal(std::string("expected ResultHeader, got ") +
                            FrameTypeToString(header_frame.type));
  }
  OXML_ASSIGN_OR_RETURN(ResultHeader header,
                        DecodeResultHeader(header_frame.body));
  ResultSet rs;
  rs.schema = header.schema;
  if (!header.is_select) {
    return Status::Internal("statement did not return rows");
  }
  rs.rows.reserve(static_cast<size_t>(header.affected));
  bool done = header.affected == 0;
  while (!done) {
    WireWriter fetch(FrameType::kFetch);
    fetch.PutU64(tag);
    fetch.PutU32(fetch_batch_rows_);
    OXML_ASSIGN_OR_RETURN(Frame reply, RoundTrip(fetch.Frame()));
    if (reply.type != FrameType::kRowBatch) {
      return Status::Internal(std::string("expected RowBatch, got ") +
                              FrameTypeToString(reply.type));
    }
    uint64_t batch_tag = 0;
    OXML_ASSIGN_OR_RETURN(done,
                          DecodeRowBatch(reply.body, &batch_tag, &rs.rows));
  }
  return rs;
}

Result<ResultSet> OxmlClient::Query(const std::string& sql, Row params) {
  uint64_t tag = NextTag();
  last_tag_ = tag;
  WireWriter w(FrameType::kQuery);
  w.PutU64(tag);
  w.PutString(sql);
  w.PutRow(params);
  OXML_ASSIGN_OR_RETURN(Frame reply, RoundTrip(w.Frame()));
  return FetchAll(tag, reply);
}

Result<int64_t> OxmlClient::Execute(const std::string& sql, Row params) {
  uint64_t tag = NextTag();
  last_tag_ = tag;
  WireWriter w(FrameType::kExecute);
  w.PutU64(tag);
  w.PutString(sql);
  w.PutRow(params);
  OXML_ASSIGN_OR_RETURN(Frame reply, RoundTrip(w.Frame()));
  if (reply.type != FrameType::kResultHeader) {
    return Status::Internal(std::string("expected ResultHeader, got ") +
                            FrameTypeToString(reply.type));
  }
  OXML_ASSIGN_OR_RETURN(ResultHeader header, DecodeResultHeader(reply.body));
  return header.affected;
}

Result<ClientPrepared> OxmlClient::Prepare(const std::string& sql) {
  uint64_t tag = NextTag();
  WireWriter w(FrameType::kPrepare);
  w.PutU64(tag);
  w.PutString(sql);
  OXML_ASSIGN_OR_RETURN(Frame reply, RoundTrip(w.Frame()));
  if (reply.type != FrameType::kPrepared) {
    return Status::Internal(std::string("expected Prepared, got ") +
                            FrameTypeToString(reply.type));
  }
  WireReader r(reply.body);
  OXML_ASSIGN_OR_RETURN(uint64_t reply_tag, r.U64());
  (void)reply_tag;
  ClientPrepared out;
  OXML_ASSIGN_OR_RETURN(out.stmt_id, r.U32());
  OXML_ASSIGN_OR_RETURN(out.param_count, r.U32());
  return out;
}

Status OxmlClient::Bind(uint32_t stmt_id, uint16_t first_index, Row values) {
  uint64_t tag = NextTag();
  WireWriter w(FrameType::kBind);
  w.PutU64(tag);
  w.PutU32(stmt_id);
  w.PutU16(first_index);
  w.PutRow(values);
  OXML_ASSIGN_OR_RETURN(Frame reply, RoundTrip(w.Frame()));
  if (reply.type != FrameType::kOk) {
    return Status::Internal(std::string("expected Ok, got ") +
                            FrameTypeToString(reply.type));
  }
  return Status::OK();
}

Result<ResultSet> OxmlClient::QueryPrepared(uint32_t stmt_id) {
  uint64_t tag = NextTag();
  last_tag_ = tag;
  WireWriter w(FrameType::kExecuteStmt);
  w.PutU64(tag);
  w.PutU32(stmt_id);
  w.PutU8(1);  // want_rows
  OXML_ASSIGN_OR_RETURN(Frame reply, RoundTrip(w.Frame()));
  return FetchAll(tag, reply);
}

Result<int64_t> OxmlClient::ExecutePrepared(uint32_t stmt_id) {
  uint64_t tag = NextTag();
  last_tag_ = tag;
  WireWriter w(FrameType::kExecuteStmt);
  w.PutU64(tag);
  w.PutU32(stmt_id);
  w.PutU8(0);  // affected count only
  OXML_ASSIGN_OR_RETURN(Frame reply, RoundTrip(w.Frame()));
  if (reply.type != FrameType::kResultHeader) {
    return Status::Internal(std::string("expected ResultHeader, got ") +
                            FrameTypeToString(reply.type));
  }
  OXML_ASSIGN_OR_RETURN(ResultHeader header, DecodeResultHeader(reply.body));
  return header.affected;
}

Status OxmlClient::CloseStatement(uint32_t stmt_id) {
  uint64_t tag = NextTag();
  WireWriter w(FrameType::kCloseStmt);
  w.PutU64(tag);
  w.PutU32(stmt_id);
  OXML_ASSIGN_OR_RETURN(Frame reply, RoundTrip(w.Frame()));
  if (reply.type != FrameType::kOk) {
    return Status::Internal(std::string("expected Ok, got ") +
                            FrameTypeToString(reply.type));
  }
  return Status::OK();
}

namespace {
Status ExpectOk(Result<Frame> reply) {
  OXML_RETURN_NOT_OK(reply.status());
  if (reply->type != FrameType::kOk) {
    return Status::Internal(std::string("expected Ok, got ") +
                            FrameTypeToString(reply->type));
  }
  return Status::OK();
}
}  // namespace

Status OxmlClient::Begin() {
  WireWriter w(FrameType::kBegin);
  w.PutU64(NextTag());
  return ExpectOk(RoundTrip(w.Frame()));
}

Status OxmlClient::Commit() {
  WireWriter w(FrameType::kCommit);
  w.PutU64(NextTag());
  return ExpectOk(RoundTrip(w.Frame()));
}

Status OxmlClient::Rollback() {
  WireWriter w(FrameType::kRollback);
  w.PutU64(NextTag());
  return ExpectOk(RoundTrip(w.Frame()));
}

Result<std::vector<std::string>> OxmlClient::XPath(const std::string& store,
                                                   const std::string& xpath) {
  uint64_t tag = NextTag();
  last_tag_ = tag;
  WireWriter w(FrameType::kXPath);
  w.PutU64(tag);
  w.PutString(store);
  w.PutString(xpath);
  OXML_ASSIGN_OR_RETURN(Frame reply, RoundTrip(w.Frame()));
  OXML_ASSIGN_OR_RETURN(ResultSet rs, FetchAll(tag, reply));
  std::vector<std::string> out;
  out.reserve(rs.rows.size());
  for (const Row& row : rs.rows) {
    if (row.size() != 1 || row[0].type() != TypeId::kText) {
      return Status::Internal("malformed XPath result row");
    }
    out.push_back(row[0].AsString());
  }
  return out;
}

Status OxmlClient::SetSessionOptions(int64_t timeout_ms,
                                     int64_t memory_budget_bytes) {
  WireWriter w(FrameType::kSessionOpts);
  w.PutU64(NextTag());
  w.PutI64(timeout_ms);
  w.PutI64(memory_budget_bytes);
  return ExpectOk(RoundTrip(w.Frame()));
}

Status OxmlClient::Ping() {
  WireWriter w(FrameType::kPing);
  w.PutU64(NextTag());
  OXML_ASSIGN_OR_RETURN(Frame reply, RoundTrip(w.Frame()));
  if (reply.type != FrameType::kPong) {
    return Status::Internal(std::string("expected Pong, got ") +
                            FrameTypeToString(reply.type));
  }
  return Status::OK();
}

Status OxmlClient::Cancel(uint64_t target_tag) {
  WireWriter w(FrameType::kCancel);
  w.PutU64(target_tag);
  // No reply: the cancelled statement's own error frame is the signal,
  // and it is read by the thread blocked in that statement call.
  return SendBytes(w.Frame());
}

Status OxmlClient::Goodbye() {
  if (fd_ < 0) return Status::OK();
  WireWriter w(FrameType::kGoodbye);
  w.PutU64(NextTag());
  Status st = ExpectOk(RoundTrip(w.Frame()));
  Abort();
  return st;
}

}  // namespace server
}  // namespace oxml
