#include "src/server/session.h"

#include <algorithm>
#include <utility>

namespace oxml {
namespace server {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ----------------------------------------------------------------- Session

Session::Session(Database* db, SessionManager* manager, uint64_t id)
    : db_(db), manager_(manager), id_(id), last_active_ns_(NowNs()) {
  defaults_ = manager_->options().defaults;
}

Session::~Session() { (void)Close(); }

void Session::Touch() {
  last_active_ns_.store(NowNs(), std::memory_order_release);
}

int64_t Session::idle_ms() const {
  return (NowNs() - last_active_ns_.load(std::memory_order_acquire)) /
         1'000'000;
}

Result<PreparedInfo> Session::Prepare(const std::string& sql) {
  Touch();
  if (killed()) return Status::Cancelled("session was killed");
  // Validate and warm the shared plan cache; the session keeps only the
  // text and its private bindings. Execution goes through QueryP/ExecuteP,
  // whose per-call parameter buffers make concurrent sessions on the same
  // text safe (PreparedStatement handles share bindings per text, which is
  // exactly the coupling a session namespace must not have).
  OXML_ASSIGN_OR_RETURN(PreparedStatement handle, db_->Prepare(sql));
  PreparedHandle ph;
  ph.sql = sql;
  ph.param_count = static_cast<uint32_t>(handle.param_count());
  ph.bindings.assign(ph.param_count, Value::Null());
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t id = next_stmt_id_++;
  PreparedInfo info{id, ph.param_count};
  prepared_.emplace(id, std::move(ph));
  return info;
}

Status Session::Bind(uint32_t stmt_id, size_t first_index, Row values) {
  Touch();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = prepared_.find(stmt_id);
  if (it == prepared_.end()) {
    return Status::NotFound("no prepared statement " +
                            std::to_string(stmt_id) + " in this session");
  }
  if (first_index + values.size() > it->second.param_count) {
    return Status::InvalidArgument(
        "bind of " + std::to_string(values.size()) + " values at index " +
        std::to_string(first_index) + " overflows " +
        std::to_string(it->second.param_count) + " parameters");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    it->second.bindings[first_index + i] = std::move(values[i]);
  }
  return Status::OK();
}

Status Session::CloseStatement(uint32_t stmt_id) {
  Touch();
  std::lock_guard<std::mutex> lock(mu_);
  if (prepared_.erase(stmt_id) == 0) {
    return Status::NotFound("no prepared statement " +
                            std::to_string(stmt_id) + " in this session");
  }
  return Status::OK();
}

size_t Session::prepared_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prepared_.size();
}

Status Session::RunStatement(uint64_t client_tag,
                             const std::function<Status()>& body) {
  Touch();
  if (killed()) return Status::Cancelled("session was killed");
  busy_.store(true, std::memory_order_release);

  // Session-scoped governance: the control is built here (not in the
  // engine's governor) so the deadline clock covers admission-queue time
  // and the session's own defaults apply; the nested engine governor
  // inherits it. Registering it gives it an engine statement id, which is
  // what the out-of-band cancel path resolves through this session's
  // in-flight slot — ids are session-qualified by construction.
  auto control = std::make_shared<QueryControl>();
  SessionDefaults defaults = this->defaults();
  int64_t timeout_ms =
      defaults.timeout_ms >= 0
          ? defaults.timeout_ms
          : static_cast<int64_t>(
                db_->options().default_statement_timeout_ms);
  if (timeout_ms > 0) {
    control->SetDeadline(std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(timeout_ms));
  }
  uint64_t budget =
      defaults.memory_budget_bytes >= 0
          ? static_cast<uint64_t>(defaults.memory_budget_bytes)
          : db_->options().statement_memory_budget_bytes;
  control->SetMemoryLimits(budget, db_->global_memory_budget());
  uint64_t statement_id = db_->RegisterExternalControl(control);
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_tag_ = client_tag;
    inflight_statement_id_ = statement_id;
  }

  Status st = manager_->Admit(control.get());
  if (st.ok()) {
    ScopedSessionIdentity identity(id_);
    ScopedQueryControl scope(control.get());
    st = body();
    manager_->Release();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_tag_ = 0;
    inflight_statement_id_ = 0;
  }
  db_->UnregisterControl(statement_id);
  busy_.store(false, std::memory_order_release);
  Touch();

  ++stats_.statements;
  if (!st.ok()) {
    ++stats_.errors;
    if (st.IsCancelled()) ++stats_.cancelled;
    if (st.IsDeadlineExceeded()) ++stats_.timed_out;
    if (st.IsResourceExhausted()) ++stats_.admission_rejected;
  }
  return st;
}

Result<ResultSet> Session::Query(const std::string& sql, Row params,
                                 uint64_t client_tag) {
  ResultSet rs;
  OXML_RETURN_NOT_OK(RunStatement(client_tag, [&]() -> Status {
    OXML_ASSIGN_OR_RETURN(rs, db_->QueryP(sql, std::move(params)));
    return Status::OK();
  }));
  stats_.rows_returned += rs.rows.size();
  return rs;
}

Result<int64_t> Session::Execute(const std::string& sql, Row params,
                                 uint64_t client_tag) {
  int64_t affected = 0;
  OXML_RETURN_NOT_OK(RunStatement(client_tag, [&]() -> Status {
    OXML_ASSIGN_OR_RETURN(affected, db_->ExecuteP(sql, std::move(params)));
    return Status::OK();
  }));
  return affected;
}

Result<ResultSet> Session::QueryPrepared(uint32_t stmt_id,
                                         uint64_t client_tag) {
  std::string sql;
  Row params;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = prepared_.find(stmt_id);
    if (it == prepared_.end()) {
      return Status::NotFound("no prepared statement " +
                              std::to_string(stmt_id) + " in this session");
    }
    sql = it->second.sql;
    params = it->second.bindings;
  }
  return Query(sql, std::move(params), client_tag);
}

Result<int64_t> Session::ExecutePrepared(uint32_t stmt_id,
                                         uint64_t client_tag) {
  std::string sql;
  Row params;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = prepared_.find(stmt_id);
    if (it == prepared_.end()) {
      return Status::NotFound("no prepared statement " +
                              std::to_string(stmt_id) + " in this session");
    }
    sql = it->second.sql;
    params = it->second.bindings;
  }
  return Execute(sql, std::move(params), client_tag);
}

Status Session::RunGoverned(uint64_t client_tag,
                            const std::function<Status()>& body) {
  return RunStatement(client_tag, body);
}

Status Session::Begin() {
  Touch();
  if (killed()) return Status::Cancelled("session was killed");
  // Transaction control bypasses the admission gate (liveness: the commit
  // that frees gate-waiting statements must never queue behind them), but
  // still runs governed — Begin itself gate-waits when a foreign session's
  // transaction is open, and that wait must honor the session deadline.
  auto control = std::make_shared<QueryControl>();
  SessionDefaults defaults = this->defaults();
  int64_t timeout_ms =
      defaults.timeout_ms >= 0
          ? defaults.timeout_ms
          : static_cast<int64_t>(
                db_->options().default_statement_timeout_ms);
  if (timeout_ms > 0) {
    control->SetDeadline(std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(timeout_ms));
  }
  ScopedSessionIdentity identity(id_);
  ScopedQueryControl scope(control.get());
  return db_->Begin();
}

Status Session::Commit() {
  Touch();
  ScopedSessionIdentity identity(id_);
  Status st = db_->Commit();
  if (st.ok()) ++stats_.txns_committed;
  return st;
}

Status Session::Rollback() {
  Touch();
  ScopedSessionIdentity identity(id_);
  Status st = db_->Rollback();
  if (st.ok()) ++stats_.txns_rolled_back;
  return st;
}

bool Session::OwnsOpenTxn() const {
  return db_->InTransaction() && db_->txn_session() == id_;
}

Status Session::Cancel(uint64_t client_tag) {
  uint64_t statement_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_statement_id_ == 0 ||
        (client_tag != 0 && client_tag != inflight_tag_)) {
      return Status::NotFound("no matching in-flight statement");
    }
    statement_id = inflight_statement_id_;
  }
  // Resolved through this session's slot only, so the id handed to
  // Database::Cancel is necessarily one of ours. NotFound here means the
  // statement finished in the meantime — benign for the caller too.
  return db_->Cancel(statement_id);
}

void Session::Kill() {
  killed_.store(true, std::memory_order_release);
  (void)Cancel(0);
}

Status Session::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::OK();
    closed_ = true;
  }
  killed_.store(true, std::memory_order_release);
  (void)Cancel(0);
  Status st = Status::OK();
  if (OwnsOpenTxn()) {
    // Disconnect mid-transaction: roll back through the normal undo path.
    // The session identity makes this legal from whatever thread runs the
    // cleanup; Rollback's exclusive latch waits out any statement the
    // cancel above is still aborting. A benign race remains — the
    // transaction may finish between the check and here — and surfaces as
    // InvalidArgument("no transaction is open"), which is success.
    ScopedSessionIdentity identity(id_);
    Status rb = db_->Rollback();
    if (rb.ok()) {
      ++stats_.txns_rolled_back;
    } else if (!rb.IsInvalidArgument()) {
      st = rb;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  prepared_.clear();
  return st;
}

void Session::SetDefaults(const SessionDefaults& defaults) {
  std::lock_guard<std::mutex> lock(mu_);
  defaults_ = defaults;
}

SessionDefaults Session::defaults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return defaults_;
}

// ---------------------------------------------------------- SessionManager

SessionManager::SessionManager(Database* db, SessionManagerOptions options)
    : db_(db), options_(options) {
  if (options_.max_concurrent_statements == 0) {
    options_.max_concurrent_statements = 1;
  }
}

SessionManager::~SessionManager() {
  // Close every remaining session (rolls back owned transactions) so a
  // manager teardown leaves the database clean.
  std::map<uint64_t, std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& [id, session] : sessions) (void)session->Close();
}

Result<std::shared_ptr<Session>> SessionManager::CreateSession() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.size() >= options_.max_sessions) {
    return Status::ResourceExhausted(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        " sessions)");
  }
  uint64_t id = next_session_id_++;
  auto session = std::make_shared<Session>(db_, this, id);
  sessions_[id] = session;
  return session;
}

std::shared_ptr<Session> SessionManager::Find(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

Status SessionManager::CloseSession(uint64_t session_id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("no session " + std::to_string(session_id));
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  return session->Close();
}

Status SessionManager::Cancel(uint64_t session_id) {
  std::shared_ptr<Session> session = Find(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  return session->Cancel(0);
}

Status SessionManager::Kill(uint64_t session_id) {
  std::shared_ptr<Session> session = Find(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  session->Kill();
  return CloseSession(session_id);
}

size_t SessionManager::ReapIdle() {
  if (options_.idle_timeout_ms <= 0) return 0;
  std::vector<std::shared_ptr<Session>> victims;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      Session& s = *it->second;
      if (!s.busy() && s.idle_ms() >= options_.idle_timeout_ms) {
        victims.push_back(std::move(it->second));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& session : victims) {
    session->Kill();
    (void)session->Close();
  }
  return victims.size();
}

size_t SessionManager::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

std::vector<std::shared_ptr<Session>> SessionManager::Sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session);
  return out;
}

Status SessionManager::Admit(QueryControl* control) {
  std::unique_lock<std::mutex> lock(admission_mu_);
  if (running_ < options_.max_concurrent_statements) {
    ++running_;
    ++admission_stats_.admitted;
    return Status::OK();
  }
  if (queued_ >= options_.max_queued_statements) {
    ++admission_stats_.rejected;
    return Status::ResourceExhausted(
        "statement admission queue is full (" +
        std::to_string(options_.max_concurrent_statements) + " running, " +
        std::to_string(queued_) + " queued)");
  }
  ++queued_;
  uint64_t peak = admission_stats_.queued_peak.load(std::memory_order_relaxed);
  while (queued_ > peak &&
         !admission_stats_.queued_peak.compare_exchange_weak(
             peak, queued_, std::memory_order_relaxed)) {
  }
  while (running_ >= options_.max_concurrent_statements) {
    if (control != nullptr) {
      // A queued statement must still honor its deadline and out-of-band
      // cancellation; poll between waits (the cv wakes on every Release).
      Status st = control->Check();
      if (!st.ok()) {
        --queued_;
        return st;
      }
    }
    admission_cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
  --queued_;
  ++running_;
  ++admission_stats_.admitted;
  return Status::OK();
}

void SessionManager::Release() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --running_;
  }
  admission_cv_.notify_one();
}

size_t SessionManager::running_statements() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return running_;
}

size_t SessionManager::queued_statements() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return queued_;
}

}  // namespace server
}  // namespace oxml
