#ifndef OXML_SERVER_CLIENT_H_
#define OXML_SERVER_CLIENT_H_

// Blocking OXWP v1 client (docs/INTERNALS.md §13). One connection = one
// server session. All statement calls are synchronous round trips on the
// calling thread; Cancel() is the one thread-safe entry point — it fires
// the out-of-band kCancel frame from any thread while another thread is
// blocked inside a statement call, which is how a client interrupts its
// own running statement.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/executor.h"
#include "src/server/wire_protocol.h"

namespace oxml {
namespace server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string auth_token;
  /// SO_RCVTIMEO on the socket — a liveness backstop well above any
  /// statement deadline, so a wedged server surfaces as kIOError instead
  /// of a hung client.
  int64_t recv_timeout_ms = 120000;
  /// Rows requested per kFetch frame.
  uint32_t fetch_batch_rows = 1024;
};

/// Prepared-statement handle as seen by the client.
struct ClientPrepared {
  uint32_t stmt_id = 0;
  uint32_t param_count = 0;
};

class OxmlClient {
 public:
  /// Connects and completes the kHello handshake.
  static Result<std::unique_ptr<OxmlClient>> Connect(
      const ClientOptions& options);
  ~OxmlClient();

  OxmlClient(const OxmlClient&) = delete;
  OxmlClient& operator=(const OxmlClient&) = delete;

  uint64_t session_id() const { return session_id_; }
  bool connected() const { return fd_ >= 0; }

  // Statements (synchronous; rows are fetched to completion internally).
  Result<ResultSet> Query(const std::string& sql, Row params = {});
  Result<int64_t> Execute(const std::string& sql, Row params = {});

  Result<ClientPrepared> Prepare(const std::string& sql);
  Status Bind(uint32_t stmt_id, uint16_t first_index, Row values);
  Result<ResultSet> QueryPrepared(uint32_t stmt_id);
  Result<int64_t> ExecutePrepared(uint32_t stmt_id);
  Status CloseStatement(uint32_t stmt_id);

  Status Begin();
  Status Commit();
  Status Rollback();

  /// Evaluates `xpath` against the server-registered store `store`,
  /// returning one oracle-style signature string per result node.
  Result<std::vector<std::string>> XPath(const std::string& store,
                                         const std::string& xpath);

  /// Per-session statement defaults (kSessionOpts frame). -1 keeps the
  /// server's default for that field.
  Status SetSessionOptions(int64_t timeout_ms, int64_t memory_budget_bytes);

  Status Ping();

  /// Out-of-band cancel; safe to call from another thread while this
  /// client is blocked in a statement call. `target_tag` 0 cancels
  /// whatever the session has in flight. Fire-and-forget: the result is
  /// the cancelled statement's own error reply.
  Status Cancel(uint64_t target_tag = 0);

  /// The tag of the most recently issued statement (to target Cancel at a
  /// specific call from another thread).
  uint64_t last_tag() const { return last_tag_; }

  /// Orderly shutdown: kGoodbye round trip, then close.
  Status Goodbye();

  /// Hard drop without goodbye — simulates a client death mid-anything
  /// (the disconnect-rollback tests use this).
  void Abort();

 private:
  OxmlClient() = default;

  Status SendBytes(const std::string& bytes);
  /// Blocks until one complete frame arrives.
  Result<Frame> ReadFrame();
  /// Sends `frame` and reads the reply; a kError reply becomes its Status.
  Result<Frame> RoundTrip(const std::string& frame);
  /// Runs a select-shaped exchange: header + fetch loop into a ResultSet.
  Result<ResultSet> FetchAll(uint64_t tag, const Frame& header_frame);
  uint64_t NextTag() { return ++tag_counter_; }

  int fd_ = -1;
  uint64_t session_id_ = 0;
  uint64_t tag_counter_ = 0;
  uint64_t last_tag_ = 0;
  uint32_t fetch_batch_rows_ = 1024;
  std::string read_buf_;
  std::mutex send_mu_;  // Cancel() may race a statement thread's send
};

}  // namespace server
}  // namespace oxml

#endif  // OXML_SERVER_CLIENT_H_
