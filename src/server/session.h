#ifndef OXML_SERVER_SESSION_H_
#define OXML_SERVER_SESSION_H_

// Sessions and admission control (docs/INTERNALS.md §13).
//
// A Session is the unit of client state: a per-connection prepared-
// statement namespace (ids scoped to the session, plans shared through the
// database's plan cache), transaction ownership (the session — not any
// particular thread — owns its open transaction, via ScopedSessionIdentity
// around every engine call made on its behalf), per-session
// StatementOptions defaults (deadline, memory budget) and per-session
// statement statistics.
//
// The SessionManager owns the sessions and the statement admission gate: a
// bounded count of concurrently executing statements plus a bounded wait
// queue feeding the database's statement latch. A statement arriving when
// the queue is full is rejected immediately with kResourceExhausted — the
// overload signal is an error frame, never a hang. Idle sessions past the
// configured timeout are reaped (prepared statements released, an owned
// transaction rolled back).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/database.h"

namespace oxml {
namespace server {

/// Per-session defaults applied to every statement the session runs (the
/// session-scoped analogue of StatementOptions).
struct SessionDefaults {
  /// -1 = inherit DatabaseOptions::default_statement_timeout_ms; 0 = no
  /// deadline; > 0 = per-statement deadline in milliseconds. Servers set a
  /// finite default so a statement gate-waiting behind a dead session's
  /// transaction can never pin a pool worker forever.
  int64_t timeout_ms = -1;
  /// -1 = inherit DatabaseOptions::statement_memory_budget_bytes;
  /// 0 = unlimited; > 0 = per-statement cap in bytes.
  int64_t memory_budget_bytes = -1;
};

/// Per-session statement counters (relaxed atomics: exact per-field,
/// unsynchronized across fields).
struct SessionStats {
  std::atomic<uint64_t> statements{0};
  std::atomic<uint64_t> rows_returned{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> cancelled{0};
  std::atomic<uint64_t> timed_out{0};
  std::atomic<uint64_t> admission_rejected{0};
  std::atomic<uint64_t> txns_committed{0};
  std::atomic<uint64_t> txns_rolled_back{0};
};

/// Admission-gate counters (SessionManager::admission_*).
struct AdmissionStats {
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> queued_peak{0};
};

struct SessionManagerOptions {
  /// Concurrent sessions; a connection past the cap is refused with
  /// kResourceExhausted.
  size_t max_sessions = 64;
  /// Statements executing at once across all sessions. Statements past the
  /// cap wait in the admission queue.
  size_t max_concurrent_statements = 8;
  /// Bounded admission queue; a statement arriving when `queued ==
  /// max_queued_statements` is rejected with kResourceExhausted.
  size_t max_queued_statements = 32;
  /// Sessions idle longer than this are reaped (0 = never). The server's
  /// poll loop drives ReapIdle on its sweep interval.
  int64_t idle_timeout_ms = 0;
  /// Defaults stamped onto new sessions (each session may override its own
  /// via SetDefaults / the kSessionOpts frame).
  SessionDefaults defaults;
};

class SessionManager;

/// Result of Session::Prepare.
struct PreparedInfo {
  uint32_t stmt_id = 0;
  uint32_t param_count = 0;
};

/// One client session. Statement entry points (Query/Execute/
/// QueryPrepared/ExecutePrepared/RunGoverned) are serialized per session by
/// the caller (the server runs one frame at a time per connection); Cancel
/// and Kill may race them from any thread. Transaction-control calls
/// (Begin/Commit/Rollback/Close) bypass the admission gate — see
/// docs/INTERNALS.md §13 for why that is required for liveness.
class Session {
 public:
  Session(Database* db, SessionManager* manager, uint64_t id);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }
  Database* database() const { return db_; }

  // ------------------------------------------------- prepared statements

  /// Compiles `sql` through the shared plan cache and stores a
  /// session-scoped handle carrying private bindings (two sessions
  /// preparing the same text share the compiled plan but never each
  /// other's parameters).
  Result<PreparedInfo> Prepare(const std::string& sql);
  /// Binds `values` starting at parameter `first_index`.
  Status Bind(uint32_t stmt_id, size_t first_index, Row values);
  Status CloseStatement(uint32_t stmt_id);
  size_t prepared_count() const;

  // ------------------------------------------------------------ execution

  /// One-shot statements (admission-gated, governed, session-identified).
  Result<ResultSet> Query(const std::string& sql, Row params,
                          uint64_t client_tag);
  Result<int64_t> Execute(const std::string& sql, Row params,
                          uint64_t client_tag);
  Result<ResultSet> QueryPrepared(uint32_t stmt_id, uint64_t client_tag);
  Result<int64_t> ExecutePrepared(uint32_t stmt_id, uint64_t client_tag);

  /// Runs an arbitrary body as one admission-gated, governed statement
  /// under this session's identity — the server's XPath frame uses this so
  /// driver-evaluated queries get the same gating as SQL.
  Status RunGoverned(uint64_t client_tag, const std::function<Status()>& body);

  // --------------------------------------------------------- transactions

  Status Begin();
  Status Commit();
  Status Rollback();
  /// True when the database's open transaction belongs to this session.
  bool OwnsOpenTxn() const;

  // -------------------------------------------------- control & lifecycle

  /// Out-of-band cancel: forwards to Database::Cancel for the statement
  /// this session has in flight. `client_tag` of 0 targets whatever is in
  /// flight; a non-zero tag must match the in-flight statement's tag.
  /// Statement ids are resolved through this session's own slot, so a
  /// session can never cancel another session's statement. NotFound when
  /// nothing (matching) is in flight — cancellation raced completion.
  Status Cancel(uint64_t client_tag);

  /// Kill: cancels any in-flight statement and marks the session dead —
  /// every later statement fails with kCancelled. Used by
  /// SessionManager::Kill and by disconnect cleanup.
  void Kill();
  bool killed() const { return killed_.load(std::memory_order_acquire); }

  /// Releases everything the session holds: cancels in-flight work, rolls
  /// back an owned open transaction (through the session-identity path, so
  /// it works from any thread), clears the prepared namespace. Idempotent.
  Status Close();

  void SetDefaults(const SessionDefaults& defaults);
  SessionDefaults defaults() const;

  SessionStats* stats() { return &stats_; }

  /// Milliseconds since the session last started or finished a statement.
  int64_t idle_ms() const;
  /// True while a statement is executing or queued for admission (such a
  /// session is never reaped).
  bool busy() const { return busy_.load(std::memory_order_acquire); }

 private:
  struct PreparedHandle {
    std::string sql;
    uint32_t param_count = 0;
    Row bindings;
  };

  /// The common statement path: build the session-scoped QueryControl
  /// (deadline + budget from the session defaults), register it for
  /// Database::Cancel, pass the admission gate, then run `body` under
  /// ScopedSessionIdentity + ScopedQueryControl. The nested engine
  /// governor inherits the control, so ids and governance are
  /// session-qualified end to end.
  Status RunStatement(uint64_t client_tag, const std::function<Status()>& body);

  void Touch();

  Database* db_;
  SessionManager* manager_;
  const uint64_t id_;

  mutable std::mutex mu_;
  std::map<uint32_t, PreparedHandle> prepared_;
  uint32_t next_stmt_id_ = 1;
  SessionDefaults defaults_;
  bool closed_ = false;

  /// In-flight statement slot (guarded by mu_): the client tag and the
  /// engine statement id Cancel forwards to Database::Cancel.
  uint64_t inflight_tag_ = 0;
  uint64_t inflight_statement_id_ = 0;

  std::atomic<bool> killed_{false};
  std::atomic<bool> busy_{false};
  std::atomic<int64_t> last_active_ns_;
  SessionStats stats_;
};

/// Owns every session and the statement admission gate.
class SessionManager {
 public:
  SessionManager(Database* db, SessionManagerOptions options);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a session, or kResourceExhausted at the session cap.
  Result<std::shared_ptr<Session>> CreateSession();
  std::shared_ptr<Session> Find(uint64_t session_id);
  /// Closes and removes the session (rolls back an owned transaction).
  Status CloseSession(uint64_t session_id);
  /// Cancels the session's in-flight statement (Database::Cancel underneath).
  Status Cancel(uint64_t session_id);
  /// Kills the session: cancel in flight, fail all later statements, close.
  Status Kill(uint64_t session_id);

  /// Closes every session idle longer than options().idle_timeout_ms;
  /// returns how many were reaped. No-op when the timeout is 0 or a
  /// statement is in flight on the session.
  size_t ReapIdle();

  size_t session_count() const;
  std::vector<std::shared_ptr<Session>> Sessions() const;

  /// The admission gate (called by Session::RunStatement). Admit blocks in
  /// the bounded queue until a slot frees, polling `control` so a queued
  /// statement still honors its deadline / out-of-band cancel; it returns
  /// kResourceExhausted immediately when the queue itself is full.
  Status Admit(QueryControl* control);
  void Release();

  size_t running_statements() const;
  size_t queued_statements() const;
  const AdmissionStats& admission_stats() const { return admission_stats_; }
  const SessionManagerOptions& options() const { return options_; }
  Database* database() const { return db_; }

 private:
  Database* db_;
  SessionManagerOptions options_;

  mutable std::mutex sessions_mu_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  size_t running_ = 0;
  size_t queued_ = 0;
  AdmissionStats admission_stats_;
};

}  // namespace server
}  // namespace oxml

#endif  // OXML_SERVER_SESSION_H_
