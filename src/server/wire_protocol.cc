#include "src/server/wire_protocol.h"

#include <cstring>

namespace oxml {
namespace server {

const char* FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "Hello";
    case FrameType::kQuery: return "Query";
    case FrameType::kExecute: return "Execute";
    case FrameType::kPrepare: return "Prepare";
    case FrameType::kBind: return "Bind";
    case FrameType::kExecuteStmt: return "ExecuteStmt";
    case FrameType::kFetch: return "Fetch";
    case FrameType::kBegin: return "Begin";
    case FrameType::kCommit: return "Commit";
    case FrameType::kRollback: return "Rollback";
    case FrameType::kCancel: return "Cancel";
    case FrameType::kCloseStmt: return "CloseStmt";
    case FrameType::kXPath: return "XPath";
    case FrameType::kSessionOpts: return "SessionOpts";
    case FrameType::kGoodbye: return "Goodbye";
    case FrameType::kPing: return "Ping";
    case FrameType::kHelloOk: return "HelloOk";
    case FrameType::kOk: return "Ok";
    case FrameType::kError: return "Error";
    case FrameType::kPrepared: return "Prepared";
    case FrameType::kResultHeader: return "ResultHeader";
    case FrameType::kRowBatch: return "RowBatch";
    case FrameType::kPong: return "Pong";
  }
  return "Unknown";
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void WireWriter::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kNull:
      break;
    case TypeId::kInt:
      PutI64(v.AsInt());
      break;
    case TypeId::kDouble:
      PutF64(v.AsDouble());
      break;
    case TypeId::kText:
    case TypeId::kBlob:
      PutString(v.AsString());
      break;
  }
}

void WireWriter::PutRow(const Row& row) {
  PutU16(static_cast<uint16_t>(row.size()));
  for (const Value& v : row) PutValue(v);
}

void WireWriter::PutStatus(const Status& st) {
  PutU8(static_cast<uint8_t>(st.code()));
  PutString(st.message());
}

std::string WireWriter::Frame() const {
  std::string out;
  out.reserve(kFrameHeaderBytes + buf_.size());
  uint32_t len = static_cast<uint32_t>(buf_.size());
  out.append(reinterpret_cast<const char*>(&len), 4);
  out.append(buf_);
  return out;
}

Status WireReader::Truncated() const {
  return Status::InvalidArgument("truncated wire frame");
}

Result<uint8_t> WireReader::U8() {
  if (pos_ + 1 > size_) return Truncated();
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> WireReader::U16() {
  if (pos_ + 2 > size_) return Truncated();
  uint16_t v;
  std::memcpy(&v, data_ + pos_, 2);
  pos_ += 2;
  return v;
}

Result<uint32_t> WireReader::U32() {
  if (pos_ + 4 > size_) return Truncated();
  uint32_t v;
  std::memcpy(&v, data_ + pos_, 4);
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::U64() {
  if (pos_ + 8 > size_) return Truncated();
  uint64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

Result<int64_t> WireReader::I64() {
  OXML_ASSIGN_OR_RETURN(uint64_t v, U64());
  int64_t out;
  std::memcpy(&out, &v, 8);
  return out;
}

Result<double> WireReader::F64() {
  OXML_ASSIGN_OR_RETURN(uint64_t v, U64());
  double out;
  std::memcpy(&out, &v, 8);
  return out;
}

Result<std::string> WireReader::String() {
  OXML_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (pos_ + len > size_) return Truncated();
  std::string out(data_ + pos_, len);
  pos_ += len;
  return out;
}

Result<Value> WireReader::GetValue() {
  OXML_ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kNull:
      return Value::Null();
    case TypeId::kInt: {
      OXML_ASSIGN_OR_RETURN(int64_t v, I64());
      return Value::Int(v);
    }
    case TypeId::kDouble: {
      OXML_ASSIGN_OR_RETURN(double v, F64());
      return Value::Double(v);
    }
    case TypeId::kText: {
      OXML_ASSIGN_OR_RETURN(std::string s, String());
      return Value::Text(std::move(s));
    }
    case TypeId::kBlob: {
      OXML_ASSIGN_OR_RETURN(std::string s, String());
      return Value::Blob(std::move(s));
    }
  }
  return Status::InvalidArgument("unknown value type tag " +
                                 std::to_string(tag));
}

Result<Row> WireReader::GetRow() {
  OXML_ASSIGN_OR_RETURN(uint16_t n, U16());
  Row row;
  row.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    OXML_ASSIGN_OR_RETURN(Value v, GetValue());
    row.push_back(std::move(v));
  }
  return row;
}

Status WireReader::GetStatus(Status* out) {
  OXML_ASSIGN_OR_RETURN(uint8_t code, U8());
  OXML_ASSIGN_OR_RETURN(std::string msg, String());
  if (code > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(code));
  }
  *out = Status(static_cast<StatusCode>(code), std::move(msg));
  return Status::OK();
}

Result<bool> ExtractFrame(std::string* buffer, Frame* out) {
  if (buffer->size() < kFrameHeaderBytes) return false;
  uint32_t len;
  std::memcpy(&len, buffer->data(), 4);
  if (len == 0) {
    return Status::InvalidArgument("empty wire frame (no type byte)");
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("wire frame of " + std::to_string(len) +
                                   " bytes exceeds the " +
                                   std::to_string(kMaxFrameBytes) +
                                   "-byte cap");
  }
  if (buffer->size() < kFrameHeaderBytes + len) return false;
  out->type = static_cast<FrameType>((*buffer)[kFrameHeaderBytes]);
  out->body.assign(*buffer, kFrameHeaderBytes + 1, len - 1);
  buffer->erase(0, kFrameHeaderBytes + len);
  return true;
}

std::string EncodeResultHeader(uint64_t tag, int64_t affected, bool is_select,
                               const Schema* schema) {
  WireWriter w(FrameType::kResultHeader);
  w.PutU64(tag);
  w.PutI64(affected);
  w.PutU8(is_select ? 1 : 0);
  if (schema == nullptr) {
    w.PutU16(0);
  } else {
    w.PutU16(static_cast<uint16_t>(schema->size()));
    for (const Column& col : schema->columns()) {
      w.PutString(col.name);
      w.PutU8(static_cast<uint8_t>(col.type));
    }
  }
  return w.Frame();
}

std::string EncodeRowBatch(uint64_t tag, const std::vector<Row>& rows,
                           size_t* start, size_t max_rows) {
  WireWriter w(FrameType::kRowBatch);
  w.PutU64(tag);
  // done + nrows are patched below; reserve their slots by writing after
  // the loop into a second writer would complicate things, so count first.
  size_t first = *start;
  size_t n = 0;
  // Leave generous headroom under the frame cap for the per-row overhead.
  const size_t soft_cap = kMaxFrameBytes - (1u << 16);
  WireWriter body(FrameType::kRowBatch);  // scratch for sizing only
  for (size_t i = first; i < rows.size() && n < max_rows; ++i) {
    body.PutRow(rows[i]);
    if (n > 0 && body.size() > soft_cap) break;  // always ship >= 1 row
    ++n;
  }
  bool done = first + n >= rows.size();
  w.PutU8(done ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(n));
  for (size_t i = first; i < first + n; ++i) w.PutRow(rows[i]);
  *start = first + n;
  return w.Frame();
}

Result<ResultHeader> DecodeResultHeader(std::string_view body) {
  WireReader r(body);
  ResultHeader out;
  OXML_ASSIGN_OR_RETURN(out.tag, r.U64());
  OXML_ASSIGN_OR_RETURN(out.affected, r.I64());
  OXML_ASSIGN_OR_RETURN(uint8_t sel, r.U8());
  out.is_select = sel != 0;
  OXML_ASSIGN_OR_RETURN(uint16_t ncols, r.U16());
  std::vector<Column> cols;
  cols.reserve(ncols);
  for (uint16_t i = 0; i < ncols; ++i) {
    Column col;
    OXML_ASSIGN_OR_RETURN(col.name, r.String());
    OXML_ASSIGN_OR_RETURN(uint8_t type, r.U8());
    col.type = static_cast<TypeId>(type);
    cols.push_back(std::move(col));
  }
  out.schema = Schema(std::move(cols));
  return out;
}

Result<bool> DecodeRowBatch(std::string_view body, uint64_t* tag,
                            std::vector<Row>* rows) {
  WireReader r(body);
  OXML_ASSIGN_OR_RETURN(*tag, r.U64());
  OXML_ASSIGN_OR_RETURN(uint8_t done, r.U8());
  OXML_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  for (uint32_t i = 0; i < n; ++i) {
    OXML_ASSIGN_OR_RETURN(Row row, r.GetRow());
    rows->push_back(std::move(row));
  }
  return done != 0;
}

std::string EncodeError(uint64_t tag, const Status& st) {
  WireWriter w(FrameType::kError);
  w.PutU64(tag);
  w.PutStatus(st);
  return w.Frame();
}

}  // namespace server
}  // namespace oxml
