#include "src/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <utility>

#include "src/core/xpath_eval.h"
#include "src/relational/thread_pool.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace server {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// The node signature the kXPath frame returns per result row. Matches the
/// DOM oracle's signature (tests/xpath_oracle_test.cc, fuzz harness) so
/// protocol clients can be compared byte-for-byte against the embedded
/// evaluator: attributes as "@name=value", everything else as the
/// serialized reconstructed subtree.
Result<std::string> NodeSignature(OrderedXmlStore* store, const StoredNode& n) {
  if (n.kind == XmlNodeKind::kAttribute) {
    return "@" + n.tag + "=" + n.value;
  }
  OXML_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> subtree,
                        store->ReconstructSubtree(n));
  return WriteXml(*subtree);
}

}  // namespace

/// Per-connection state. The poll thread owns fd readiness and the read
/// buffer; workers execute at most one frame at a time (state_mu serializes
/// the pending queue + busy flag) and write replies under write_mu. The fd
/// is closed by the destructor, i.e. when the last shared_ptr — poll map,
/// in-flight worker, or cleanup task — lets go, so no thread can ever poll
/// or write a recycled descriptor.
struct OxmlServer::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  std::shared_ptr<Session> session;  // set by kHello

  std::string read_buf;  // poll thread only

  std::mutex state_mu;
  std::deque<Frame> pending;
  bool busy = false;
  bool closing = false;
  bool cleanup_scheduled = false;

  std::mutex write_mu;  // serializes socket writes across workers

  // The open result cursor (touched only by the worker executing this
  // connection's current frame; the busy-flag handoff under state_mu
  // orders access across workers).
  bool has_cursor = false;
  uint64_t cursor_tag = 0;
  ResultSet cursor;
  size_t cursor_pos = 0;
};

OxmlServer::OxmlServer(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

OxmlServer::~OxmlServer() { Stop(); }

Status OxmlServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("server is already running");
  }
  if (!db_->options().enable_mvcc) {
    // Without MVCC an open transaction pins the statement latch to the
    // thread that ran Begin; session transactions hop pool threads, so the
    // server refuses to start in that mode rather than deadlock later.
    return Status::InvalidArgument(
        "the server requires DatabaseOptions::enable_mvcc: session "
        "transactions execute on whichever worker picks up the next frame");
  }
  if (options_.worker_threads == 0) options_.worker_threads = 1;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Errno("bind " + options_.host);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    Status st = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  // Ephemeral-port support: read back whatever the kernel assigned.
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) <
      0) {
    Status st = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(bound.sin_port);
  OXML_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  if (::pipe(wake_pipe_) < 0) {
    Status st = Errno("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);

  manager_ = std::make_unique<SessionManager>(db_, options_.session);
  exec_pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  control_pool_ = std::make_unique<ThreadPool>(1);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  poll_thread_ = std::thread([this] { PollLoop(); });
  return Status::OK();
}

void OxmlServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  WakePoll();
  if (poll_thread_.joinable()) poll_thread_.join();

  // Quiesce the pools in dependency order — exec workers schedule
  // disconnect cleanup onto the control lane, and the control lane's
  // kGoodbye path re-submits to itself — without nulling the members: a
  // draining worker that loaded stopping_ == false may still dereference
  // exec_pool_/control_pool_, so the pointers must stay valid until both
  // pools are joined. Only then is it safe to destroy them.
  if (exec_pool_ != nullptr) exec_pool_->Shutdown();
  if (control_pool_ != nullptr) control_pool_->Shutdown();
  exec_pool_.reset();
  control_pool_.reset();

  // Roll back whatever the surviving sessions own and drop the fds.
  std::map<int, std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& [fd, conn] : conns) {
    (void)fd;
    if (conn->session) {
      conn->session->Kill();
      conn->session->Close();
      manager_->CloseSession(conn->session->id());
    }
    stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  }
  conns.clear();

  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void OxmlServer::RegisterStore(const std::string& name,
                               OrderedXmlStore* store) {
  std::lock_guard<std::mutex> lock(stores_mu_);
  stores_[name] = store;
}

void OxmlServer::UnregisterStore(const std::string& name) {
  std::lock_guard<std::mutex> lock(stores_mu_);
  stores_.erase(name);
}

void OxmlServer::WakePoll() {
  if (wake_pipe_[1] >= 0) {
    char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void OxmlServer::PollLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    // Sweep connections flagged for teardown, then snapshot the live set.
    // The snapshot's shared_ptrs keep every polled fd open for the whole
    // iteration even if a worker flags the connection meanwhile.
    std::vector<std::shared_ptr<Connection>> live;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        bool closing;
        {
          std::lock_guard<std::mutex> st(it->second->state_mu);
          closing = it->second->closing;
        }
        if (closing) {
          it = conns_.erase(it);
        } else {
          live.push_back(it->second);
          ++it;
        }
      }
    }

    std::vector<pollfd> fds;
    fds.reserve(live.size() + 2);
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const auto& conn : live) fds.push_back({conn->fd, POLLIN, 0});

    int rc = ::poll(fds.data(), fds.size(),
                    static_cast<int>(options_.sweep_interval_ms));
    if (stopping_.load(std::memory_order_acquire)) break;
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure; Stop() still cleans up
    }

    if (fds[1].revents & POLLIN) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) AcceptPending();

    for (size_t i = 0; i < live.size(); ++i) {
      short revents = fds[i + 2].revents;
      if (revents == 0) continue;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) &&
          !(revents & POLLIN)) {
        CloseConnection(live[i]);
        continue;
      }
      if (revents & POLLIN) {
        if (!ReadConnection(live[i])) CloseConnection(live[i]);
      }
    }

    // Idle-session reaping rides the poll timeout. A reaped session's
    // connection is torn down too (its kills are visible via killed()).
    if (manager_ && options_.session.idle_timeout_ms > 0) {
      size_t reaped = manager_->ReapIdle();
      if (reaped > 0) {
        stats_.sessions_reaped.fetch_add(reaped, std::memory_order_relaxed);
        for (const auto& conn : live) {
          if (conn->session && conn->session->killed()) {
            CloseConnection(conn);
          }
        }
      }
    }
  }
}

void OxmlServer::AcceptPending() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_[fd] = conn;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

bool OxmlServer::ReadConnection(const std::shared_ptr<Connection>& conn) {
  char buf[16384];
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->read_buf.append(buf, static_cast<size_t>(n));
      if (conn->read_buf.size() >
          kMaxFrameBytes + kFrameHeaderBytes + (16u << 10)) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        return false;  // runaway buffer: client is not speaking OXWP
      }
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  while (true) {
    Frame frame;
    Result<bool> got = ExtractFrame(&conn->read_buf, &frame);
    if (!got.ok()) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      SendFrame(conn, EncodeError(0, got.status()));
      return false;
    }
    if (!*got) break;
    stats_.frames_received.fetch_add(1, std::memory_order_relaxed);
    EnqueueFrame(conn, std::move(frame));
  }
  return true;
}

void OxmlServer::EnqueueFrame(const std::shared_ptr<Connection>& conn,
                              Frame frame) {
  if (frame.type == FrameType::kCancel) {
    // Out-of-band: handled here on the poll thread while the statement it
    // targets is still executing on a worker. Resolution goes through the
    // session's own in-flight slot, so a client can only ever cancel its
    // own statement. No reply — the cancelled statement's error frame (or
    // its normal result, if cancellation raced completion) is the signal.
    stats_.cancels_received.fetch_add(1, std::memory_order_relaxed);
    WireReader r(frame.body);
    auto tag = r.U64();
    if (tag.ok() && conn->session) (void)conn->session->Cancel(*tag);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn->state_mu);
    if (conn->closing) return;
    conn->pending.push_back(std::move(frame));
  }
  PumpConnection(conn);
}

void OxmlServer::PumpConnection(const std::shared_ptr<Connection>& conn) {
  if (stopping_.load(std::memory_order_acquire)) return;
  Frame frame;
  {
    std::lock_guard<std::mutex> lock(conn->state_mu);
    if (conn->busy || conn->closing || conn->pending.empty()) return;
    frame = std::move(conn->pending.front());
    conn->pending.pop_front();
    conn->busy = true;
  }
  // Transaction-control frames go to the single-thread control lane: a
  // commit must be able to run even when every exec worker is gate-waiting
  // on the very transaction it would release.
  bool control = frame.type == FrameType::kCommit ||
                 frame.type == FrameType::kRollback ||
                 frame.type == FrameType::kGoodbye;
  ThreadPool* pool = control ? control_pool_.get() : exec_pool_.get();
  pool->Submit([this, conn, f = std::move(frame)]() mutable {
    ProcessFrame(conn, std::move(f));
  });
}

void OxmlServer::SendFrame(const std::shared_ptr<Connection>& conn,
                           const std::string& bytes) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(conn->fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{conn->fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 10000) <= 0) break;  // stuck peer: give up
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // dead peer; disconnect cleanup happens via the poll thread
  }
}

void OxmlServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(conn->state_mu);
    conn->closing = true;
    conn->pending.clear();
    if (!conn->cleanup_scheduled) {
      conn->cleanup_scheduled = true;
      schedule = true;
    }
  }
  if (!schedule) return;
  // Unblock anything still reading/writing the socket; the fd itself is
  // closed by the Connection destructor once every reference drops.
  ::shutdown(conn->fd, SHUT_RDWR);
  WakePoll();  // poll thread erases the connection on its next sweep
  if (stopping_.load(std::memory_order_acquire)) return;  // Stop() cleans up
  // Session teardown runs on the control lane so a disconnect mid-
  // transaction rolls back even when the exec pool is saturated.
  control_pool_->Submit([this, conn] {
    if (conn->session) {
      conn->session->Kill();
      conn->session->Close();
      manager_->CloseSession(conn->session->id());
    }
    stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  });
}

void OxmlServer::HandleHello(const std::shared_ptr<Connection>& conn,
                             const Frame& frame) {
  WireReader r(frame.body);
  uint32_t version = 0;
  std::string token;
  {
    auto v = r.U32();
    if (!v.ok()) {
      SendFrame(conn, EncodeError(0, v.status()));
      CloseConnection(conn);
      return;
    }
    version = *v;
    auto t = r.String();
    if (!t.ok()) {
      SendFrame(conn, EncodeError(0, t.status()));
      CloseConnection(conn);
      return;
    }
    token = std::move(*t);
  }
  if (version != kWireProtocolVersion) {
    SendFrame(conn, EncodeError(0, Status::InvalidArgument(
                        "unsupported protocol version " +
                        std::to_string(version))));
    CloseConnection(conn);
    return;
  }
  if (!options_.auth_token.empty() && token != options_.auth_token) {
    SendFrame(conn,
              EncodeError(0, Status::InvalidArgument("bad auth token")));
    CloseConnection(conn);
    return;
  }
  if (conn->session) {
    SendFrame(conn, EncodeError(0, Status::AlreadyExists(
                        "connection already has a session")));
    return;
  }
  Result<std::shared_ptr<Session>> session = manager_->CreateSession();
  if (!session.ok()) {
    // Session cap: refuse cleanly with the engine's status so the client
    // sees kResourceExhausted, then drop the connection.
    SendFrame(conn, EncodeError(0, session.status()));
    CloseConnection(conn);
    return;
  }
  conn->session = std::move(*session);
  WireWriter w(FrameType::kHelloOk);
  w.PutU64(conn->session->id());
  w.PutU32(kWireProtocolVersion);
  SendFrame(conn, w.Frame());
}

void OxmlServer::ProcessFrame(std::shared_ptr<Connection> conn, Frame frame) {
  auto send_ok = [&](uint64_t tag) {
    WireWriter w(FrameType::kOk);
    w.PutU64(tag);
    SendFrame(conn, w.Frame());
  };
  // Replies to a select-shaped result: header now, rows via kFetch.
  auto open_cursor = [&](uint64_t tag, ResultSet rs) {
    conn->cursor = std::move(rs);
    conn->cursor_tag = tag;
    conn->cursor_pos = 0;
    conn->has_cursor = true;
    SendFrame(conn, EncodeResultHeader(
                        tag, static_cast<int64_t>(conn->cursor.rows.size()),
                        /*is_select=*/true, &conn->cursor.schema));
  };

  switch (frame.type) {
    case FrameType::kHello:
      HandleHello(conn, frame);
      break;

    case FrameType::kPing: {
      WireReader r(frame.body);
      auto tag = r.U64();
      WireWriter w(FrameType::kPong);
      w.PutU64(tag.ok() ? *tag : 0);
      SendFrame(conn, w.Frame());
      break;
    }

    default: {
      // Everything else needs a session.
      WireReader r(frame.body);
      auto tag_or = r.U64();
      uint64_t tag = tag_or.ok() ? *tag_or : 0;
      if (!tag_or.ok()) {
        SendFrame(conn, EncodeError(0, tag_or.status()));
        CloseConnection(conn);
        break;
      }
      if (!conn->session) {
        SendFrame(conn, EncodeError(tag, Status::InvalidArgument(
                            "no session: send Hello first")));
        break;
      }
      Session* session = conn->session.get();

      switch (frame.type) {
        case FrameType::kQuery: {
          auto sql = r.String();
          auto params = sql.ok() ? r.GetRow() : Result<Row>(sql.status());
          if (!params.ok()) {
            SendFrame(conn, EncodeError(tag, params.status()));
            break;
          }
          Result<ResultSet> rs =
              session->Query(*sql, std::move(*params), tag);
          if (!rs.ok()) {
            SendFrame(conn, EncodeError(tag, rs.status()));
          } else {
            open_cursor(tag, std::move(*rs));
          }
          break;
        }

        case FrameType::kExecute: {
          auto sql = r.String();
          auto params = sql.ok() ? r.GetRow() : Result<Row>(sql.status());
          if (!params.ok()) {
            SendFrame(conn, EncodeError(tag, params.status()));
            break;
          }
          Result<int64_t> affected =
              session->Execute(*sql, std::move(*params), tag);
          if (!affected.ok()) {
            SendFrame(conn, EncodeError(tag, affected.status()));
          } else {
            SendFrame(conn, EncodeResultHeader(tag, *affected,
                                               /*is_select=*/false, nullptr));
          }
          break;
        }

        case FrameType::kPrepare: {
          auto sql = r.String();
          if (!sql.ok()) {
            SendFrame(conn, EncodeError(tag, sql.status()));
            break;
          }
          Result<PreparedInfo> info = session->Prepare(*sql);
          if (!info.ok()) {
            SendFrame(conn, EncodeError(tag, info.status()));
          } else {
            WireWriter w(FrameType::kPrepared);
            w.PutU64(tag);
            w.PutU32(info->stmt_id);
            w.PutU32(info->param_count);
            SendFrame(conn, w.Frame());
          }
          break;
        }

        case FrameType::kBind: {
          auto stmt_id = r.U32();
          auto first = stmt_id.ok() ? r.U16() : Result<uint16_t>(
                                                    stmt_id.status());
          auto values =
              first.ok() ? r.GetRow() : Result<Row>(first.status());
          if (!values.ok()) {
            SendFrame(conn, EncodeError(tag, values.status()));
            break;
          }
          Status st = session->Bind(*stmt_id, *first, std::move(*values));
          if (!st.ok()) {
            SendFrame(conn, EncodeError(tag, st));
          } else {
            send_ok(tag);
          }
          break;
        }

        case FrameType::kExecuteStmt: {
          auto stmt_id = r.U32();
          auto want_rows =
              stmt_id.ok() ? r.U8() : Result<uint8_t>(stmt_id.status());
          if (!want_rows.ok()) {
            SendFrame(conn, EncodeError(tag, want_rows.status()));
            break;
          }
          if (*want_rows) {
            Result<ResultSet> rs = session->QueryPrepared(*stmt_id, tag);
            if (!rs.ok()) {
              SendFrame(conn, EncodeError(tag, rs.status()));
            } else {
              open_cursor(tag, std::move(*rs));
            }
          } else {
            Result<int64_t> affected = session->ExecutePrepared(*stmt_id, tag);
            if (!affected.ok()) {
              SendFrame(conn, EncodeError(tag, affected.status()));
            } else {
              SendFrame(conn,
                        EncodeResultHeader(tag, *affected,
                                           /*is_select=*/false, nullptr));
            }
          }
          break;
        }

        case FrameType::kFetch: {
          auto max_rows = r.U32();
          if (!max_rows.ok()) {
            SendFrame(conn, EncodeError(tag, max_rows.status()));
            break;
          }
          if (!conn->has_cursor) {
            SendFrame(conn, EncodeError(tag, Status::NotFound(
                                "no open result cursor")));
            break;
          }
          size_t max = *max_rows == 0 ? 1024 : *max_rows;
          std::string batch = EncodeRowBatch(conn->cursor_tag,
                                             conn->cursor.rows,
                                             &conn->cursor_pos, max);
          if (conn->cursor_pos >= conn->cursor.rows.size()) {
            conn->has_cursor = false;
            conn->cursor = ResultSet();
          }
          SendFrame(conn, batch);
          break;
        }

        case FrameType::kBegin: {
          Status st = session->Begin();
          st.ok() ? send_ok(tag)
                  : SendFrame(conn, EncodeError(tag, st));
          break;
        }
        case FrameType::kCommit: {
          Status st = session->Commit();
          st.ok() ? send_ok(tag)
                  : SendFrame(conn, EncodeError(tag, st));
          break;
        }
        case FrameType::kRollback: {
          Status st = session->Rollback();
          st.ok() ? send_ok(tag)
                  : SendFrame(conn, EncodeError(tag, st));
          break;
        }

        case FrameType::kCloseStmt: {
          auto stmt_id = r.U32();
          if (!stmt_id.ok()) {
            SendFrame(conn, EncodeError(tag, stmt_id.status()));
            break;
          }
          Status st = session->CloseStatement(*stmt_id);
          st.ok() ? send_ok(tag)
                  : SendFrame(conn, EncodeError(tag, st));
          break;
        }

        case FrameType::kXPath: {
          auto store_name = r.String();
          auto xpath = store_name.ok()
                           ? r.String()
                           : Result<std::string>(store_name.status());
          if (!xpath.ok()) {
            SendFrame(conn, EncodeError(tag, xpath.status()));
            break;
          }
          OrderedXmlStore* store = nullptr;
          {
            std::lock_guard<std::mutex> lock(stores_mu_);
            auto it = stores_.find(*store_name);
            if (it != stores_.end()) store = it->second;
          }
          if (store == nullptr) {
            SendFrame(conn, EncodeError(tag, Status::NotFound(
                                "no store registered as '" + *store_name +
                                "'")));
            break;
          }
          // Evaluate under the session's governance (admission gate,
          // deadline, cancel) exactly like a SQL statement, returning one
          // oracle-comparable signature per result node.
          ResultSet rs;
          rs.schema = Schema({Column{"node", TypeId::kText}});
          Status st = session->RunGoverned(tag, [&]() -> Status {
            OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> nodes,
                                  EvaluateXPath(store, *xpath));
            rs.rows.reserve(nodes.size());
            for (const StoredNode& n : nodes) {
              OXML_ASSIGN_OR_RETURN(std::string sig, NodeSignature(store, n));
              rs.rows.push_back(Row{Value::Text(std::move(sig))});
            }
            return Status::OK();
          });
          if (!st.ok()) {
            SendFrame(conn, EncodeError(tag, st));
          } else {
            open_cursor(tag, std::move(rs));
          }
          break;
        }

        case FrameType::kSessionOpts: {
          auto timeout = r.I64();
          auto budget =
              timeout.ok() ? r.I64() : Result<int64_t>(timeout.status());
          if (!budget.ok()) {
            SendFrame(conn, EncodeError(tag, budget.status()));
            break;
          }
          SessionDefaults d;
          d.timeout_ms = *timeout;
          d.memory_budget_bytes = *budget;
          session->SetDefaults(d);
          send_ok(tag);
          break;
        }

        case FrameType::kGoodbye: {
          send_ok(tag);
          CloseConnection(conn);
          break;
        }

        default: {
          stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          SendFrame(conn, EncodeError(tag, Status::InvalidArgument(
                              std::string("unexpected frame type ") +
                              FrameTypeToString(frame.type))));
          CloseConnection(conn);
          break;
        }
      }
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(conn->state_mu);
    conn->busy = false;
  }
  PumpConnection(conn);
}

}  // namespace server
}  // namespace oxml
