#ifndef OXML_SERVER_WIRE_PROTOCOL_H_
#define OXML_SERVER_WIRE_PROTOCOL_H_

// OXWP v1 — the ordered-XML wire protocol (docs/INTERNALS.md §13).
//
// Every message is one length-prefixed binary frame:
//
//   [u32 length][u8 type][payload ...]
//
// `length` counts the type byte plus the payload, little-endian, and is
// capped at kMaxFrameBytes. All integers are little-endian fixed width;
// strings are u32-length-prefixed byte runs; a Value is a one-byte TypeId
// tag followed by its payload; a Row is a u16 count followed by that many
// Values. Error frames carry the engine's Status verbatim (u8 StatusCode +
// message), so a client sees exactly what the embedded API would return.
//
// Request frames carry a client-assigned u64 tag that the matching reply
// echoes. The protocol is synchronous per connection — one statement in
// flight at a time — except for kCancel, which the server handles on the
// poll thread while a statement of the same session is executing (that is
// the out-of-band cancellation path feeding Database::Cancel).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/relational/executor.h"
#include "src/relational/value.h"

namespace oxml {
namespace server {

/// Protocol version sent in kHello / kHelloOk.
inline constexpr uint32_t kWireProtocolVersion = 1;

/// Hard cap on one frame (type byte + payload). Oversized result batches
/// must be split by the sender; an oversized incoming frame kills the
/// connection (it cannot be skipped reliably).
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Frame header size on the wire: the u32 length prefix.
inline constexpr size_t kFrameHeaderBytes = 4;

enum class FrameType : uint8_t {
  // client -> server
  kHello = 0x01,        // u32 version, str auth_token (stub: any accepted)
  kQuery = 0x02,        // u64 tag, str sql, row params — SELECT only
  kExecute = 0x03,      // u64 tag, str sql, row params — any statement
  kPrepare = 0x04,      // u64 tag, str sql
  kBind = 0x05,         // u64 tag, u32 stmt_id, u16 first_index, row values
  kExecuteStmt = 0x06,  // u64 tag, u32 stmt_id, u8 want_rows
  kFetch = 0x07,        // u64 tag, u32 max_rows — next batch of open cursor
  kBegin = 0x08,        // u64 tag
  kCommit = 0x09,       // u64 tag
  kRollback = 0x0A,     // u64 tag
  kCancel = 0x0B,       // u64 target_tag (0 = whatever is in flight)
  kCloseStmt = 0x0C,    // u64 tag, u32 stmt_id
  kXPath = 0x0D,        // u64 tag, str store, str xpath
  kSessionOpts = 0x0E,  // u64 tag, i64 timeout_ms, i64 memory_budget
  kGoodbye = 0x0F,      // u64 tag — orderly close
  kPing = 0x10,         // u64 tag

  // server -> client
  kHelloOk = 0x81,       // u64 session_id, u32 version
  kOk = 0x82,            // u64 tag
  kError = 0x83,         // u64 tag, u8 status_code, str message
  kPrepared = 0x84,      // u64 tag, u32 stmt_id, u32 param_count
  kResultHeader = 0x85,  // u64 tag, i64 affected, u8 is_select,
                         // u16 ncols, ncols x (str name, u8 type)
  kRowBatch = 0x86,      // u64 tag, u8 done, u32 nrows, nrows x row
  kPong = 0x87,          // u64 tag
};

const char* FrameTypeToString(FrameType type);

/// Serializer for one frame payload. Append primitives, then Frame() to
/// get the length-prefixed wire bytes.
class WireWriter {
 public:
  explicit WireWriter(FrameType type) { buf_.push_back(static_cast<char>(type)); }

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { AppendLe(&v, 2); }
  void PutU32(uint32_t v) { AppendLe(&v, 4); }
  void PutU64(uint64_t v) { AppendLe(&v, 8); }
  void PutI64(int64_t v) { AppendLe(&v, 8); }
  void PutF64(double v) { AppendLe(&v, 8); }
  void PutString(std::string_view s);
  void PutValue(const Value& v);
  void PutRow(const Row& row);
  void PutStatus(const Status& st);

  /// The complete frame: u32 length prefix + type + payload.
  std::string Frame() const;

  /// Bytes the frame body holds so far (type byte included).
  size_t size() const { return buf_.size(); }

 private:
  void AppendLe(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Cursor over one received frame body (type byte already consumed by
/// ExtractFrame). Every getter bounds-checks and fails with
/// kInvalidArgument on truncation, so a malformed client cannot run the
/// server off the end of a buffer.
class WireReader {
 public:
  WireReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(std::string_view body)
      : data_(body.data()), size_(body.size()) {}

  Result<uint8_t> U8();
  Result<uint16_t> U16();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> F64();
  Result<std::string> String();
  Result<Value> GetValue();
  Result<Row> GetRow();
  /// Decodes a wire Status into `*out`; the return value reports decode
  /// success (Result<Status> would be ill-formed — Status is the error
  /// channel itself).
  Status GetStatus(Status* out);

  size_t remaining() const { return size_ - pos_; }

 private:
  Status Truncated() const;
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// One frame split from the connection byte stream.
struct Frame {
  FrameType type = FrameType::kPing;
  std::string body;  // payload without the type byte
};

/// Tries to split one complete frame off the front of `buffer`. Returns
/// true and erases the consumed bytes when a frame was extracted, false
/// when more bytes are needed. A frame longer than kMaxFrameBytes (or an
/// empty one, which cannot carry a type byte) fails with kInvalidArgument;
/// the connection is then unrecoverable and must be closed.
Result<bool> ExtractFrame(std::string* buffer, Frame* out);

// ---------------------------------------------------------- result frames

/// Encodes the header frame for a statement result. For SELECT results the
/// schema rides along and `affected` is the row count; for non-SELECT it
/// is the affected-row count and the column list is empty.
std::string EncodeResultHeader(uint64_t tag, int64_t affected, bool is_select,
                               const Schema* schema);

/// Splits `rows[start...]` into one kRowBatch frame holding at most
/// `max_rows` rows (and staying under the frame cap); advances *start past
/// the encoded rows and sets `done` when the last row went out.
std::string EncodeRowBatch(uint64_t tag, const std::vector<Row>& rows,
                           size_t* start, size_t max_rows);

/// Decodes a kResultHeader body.
struct ResultHeader {
  uint64_t tag = 0;
  int64_t affected = 0;
  bool is_select = false;
  Schema schema;
};
Result<ResultHeader> DecodeResultHeader(std::string_view body);

/// Decodes a kRowBatch body, appending to `rows`.
Result<bool> DecodeRowBatch(std::string_view body, uint64_t* tag,
                            std::vector<Row>* rows);

/// Encodes / decodes an error frame (u64 tag + Status).
std::string EncodeError(uint64_t tag, const Status& st);

}  // namespace server
}  // namespace oxml

#endif  // OXML_SERVER_WIRE_PROTOCOL_H_
