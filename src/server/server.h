#ifndef OXML_SERVER_SERVER_H_
#define OXML_SERVER_SERVER_H_

// The OXWP v1 TCP front end (docs/INTERNALS.md §13).
//
// A poll()-based loop on a dedicated thread owns all socket reads: it
// accepts connections, splits the byte stream into frames, and hands each
// frame to a worker pool (ThreadPool::Submit). Frames are strictly ordered
// per connection — one frame executes at a time, the next is dispatched
// when the previous finishes — with two exceptions baked into the design:
//
//   * kCancel is handled on the poll thread itself, while the session's
//     statement is still executing on a worker. That is the out-of-band
//     cancellation path: it resolves the session's in-flight statement id
//     and forwards to Database::Cancel.
//   * Transaction-control frames (kCommit / kRollback / kGoodbye) and
//     disconnect cleanup run on a separate single-thread control lane, so
//     the commit that releases gate-waiting mutations can never be starved
//     by a worker pool full of statements gate-waiting on that very
//     transaction.
//
// Statement execution itself is admission-gated by the SessionManager; a
// full queue surfaces as a kResourceExhausted error frame, never a hang.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/result.h"
#include "src/core/ordered_store.h"
#include "src/relational/database.h"
#include "src/server/session.h"
#include "src/server/wire_protocol.h"

namespace oxml {

class ThreadPool;

namespace server {

struct ServerOptions {
  /// Loopback by default: the auth stub is not an authentication system.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back via port() after Start().
  uint16_t port = 0;
  /// Workers executing statement frames (>= 1).
  size_t worker_threads = 4;
  /// Accept backlog.
  int listen_backlog = 64;
  /// When non-empty, kHello must carry this token (stub authentication).
  std::string auth_token;
  /// Session + admission limits.
  SessionManagerOptions session;
  /// Poll timeout; also the idle-reap sweep cadence.
  int64_t sweep_interval_ms = 200;
};

/// Aggregate server counters (relaxed atomics, monotone).
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> cancels_received{0};
  std::atomic<uint64_t> sessions_reaped{0};
  std::atomic<uint64_t> protocol_errors{0};
};

/// A multi-client server over one embedded Database. The Database (and any
/// registered stores) must outlive the server; Stop() (or destruction)
/// closes every session, rolling back whatever transactions they own.
///
/// Requires DatabaseOptions::enable_mvcc: session transactions are served
/// by whichever pool thread picks up the next frame, and the MVCC-off
/// discipline pins the statement latch to the Begin thread for the
/// transaction's lifetime, which is incompatible with that.
class OxmlServer {
 public:
  OxmlServer(Database* db, ServerOptions options);
  ~OxmlServer();

  OxmlServer(const OxmlServer&) = delete;
  OxmlServer& operator=(const OxmlServer&) = delete;

  Status Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Exposes `store` to the kXPath frame under `name`. Re-registration
  /// replaces the pointer (the fuzz harness swaps stores on bulk reload).
  void RegisterStore(const std::string& name, OrderedXmlStore* store);
  void UnregisterStore(const std::string& name);

  SessionManager* session_manager() { return manager_.get(); }
  Database* database() const { return db_; }
  ServerStats* stats() { return &stats_; }

 private:
  struct Connection;

  void PollLoop();
  void AcceptPending();
  /// Reads everything available from the connection; extracts frames and
  /// dispatches them. Returns false when the connection died.
  bool ReadConnection(const std::shared_ptr<Connection>& conn);
  /// Queues `frame` (or handles kCancel inline) and pumps the dispatch.
  void EnqueueFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  /// Dispatches the next pending frame when none is executing.
  void PumpConnection(const std::shared_ptr<Connection>& conn);
  /// Executes one frame on a worker; then re-pumps.
  void ProcessFrame(std::shared_ptr<Connection> conn, Frame frame);
  void HandleHello(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  /// Begins teardown: stops polling the fd and schedules session cleanup
  /// on the control lane.
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void SendFrame(const std::shared_ptr<Connection>& conn,
                 const std::string& bytes);
  void WakePoll();

  Database* db_;
  ServerOptions options_;
  std::unique_ptr<SessionManager> manager_;
  /// Statement-frame workers.
  std::unique_ptr<ThreadPool> exec_pool_;
  /// Single-thread control lane: commit/rollback/goodbye + disconnect
  /// cleanup (see file comment).
  std::unique_ptr<ThreadPool> control_pool_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::thread poll_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::map<int, std::shared_ptr<Connection>> conns_;  // keyed by fd

  std::mutex stores_mu_;
  std::map<std::string, OrderedXmlStore*> stores_;

  ServerStats stats_;
};

}  // namespace server
}  // namespace oxml

#endif  // OXML_SERVER_SERVER_H_
