#ifndef OXML_OXML_H_
#define OXML_OXML_H_

/// Umbrella header for the ordered-xml library: everything a typical
/// application needs to parse XML, shred it into a relational database
/// under one of the three order encodings, run ordered XPath queries (in
/// driver or single-SQL-statement mode), perform order-preserving updates,
/// and publish documents back to XML text.
///
/// Layering (include individual headers for finer-grained dependencies):
///   common/      Status/Result error handling, utilities
///   xml/         XML parser, DOM, writer, generators
///   relational/  the embedded relational engine (SQL surface: database.h)
///   core/        order encodings, XPath, updates, collections

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/core/collection.h"
#include "src/core/dewey.h"
#include "src/core/order_encoding.h"
#include "src/core/ordered_store.h"
#include "src/core/sql_translator.h"
#include "src/core/xpath.h"
#include "src/core/xpath_eval.h"
#include "src/relational/database.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_node.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

#endif  // OXML_OXML_H_
