// Quickstart: parse an XML document, shred it into a relational database
// with the Dewey order encoding, run ordered XPath queries, perform an
// order-preserving insert, and publish the document back as XML.
//
// Build & run:  ./build/examples/example_quickstart

#include <cstdio>
#include <iostream>

#include "src/core/ordered_store.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

using namespace oxml;

namespace {

constexpr const char* kXml = R"(<playlist name="road trip">
  <track rating="5"><title>Highway Song</title><length>214</length></track>
  <track rating="3"><title>Dusty Roads</title><length>187</length></track>
  <track rating="4"><title>Night Drive</title><length>252</length></track>
</playlist>)";

#define DIE_IF_ERROR(expr)                                   \
  do {                                                       \
    if (!(expr).ok()) {                                      \
      std::cerr << "error: " << (expr).status() << "\n";     \
      return 1;                                              \
    }                                                        \
  } while (0)

#define DIE_IF_BAD_STATUS(expr)                              \
  do {                                                       \
    Status _st = (expr);                                     \
    if (!_st.ok()) {                                         \
      std::cerr << "error: " << _st << "\n";                 \
      return 1;                                              \
    }                                                        \
  } while (0)

}  // namespace

int main() {
  // 1. Parse XML into a DOM.
  auto doc = ParseXml(kXml);
  DIE_IF_ERROR(doc);
  std::cout << "parsed document with " << (*doc)->TotalNodes()
            << " nodes\n";

  // 2. Open an in-memory relational database and shred the document using
  //    the Dewey order encoding (the paper's recommended scheme).
  auto db = Database::Open();
  DIE_IF_ERROR(db);
  auto store = OrderedXmlStore::Create(db->get(), OrderEncoding::kDewey);
  DIE_IF_ERROR(store);
  DIE_IF_BAD_STATUS((*store)->LoadDocument(**doc));

  // 3. Ordered XPath queries — order is preserved relationally.
  auto titles = EvaluateXPathStrings(store->get(), "/playlist/track/title");
  DIE_IF_ERROR(titles);
  std::cout << "\ntracks in playlist order:\n";
  for (const std::string& t : *titles) std::cout << "  - " << t << "\n";

  auto second = EvaluateXPathStrings(store->get(),
                                     "/playlist/track[2]/title");
  DIE_IF_ERROR(second);
  std::cout << "second track: " << (*second)[0] << "\n";

  auto after = EvaluateXPathStrings(
      store->get(),
      "//track[title = 'Highway Song']/following-sibling::track/title");
  DIE_IF_ERROR(after);
  std::cout << "tracks after 'Highway Song': " << after->size() << "\n";

  // 4. Order-preserving update: insert a new track before track 2.
  auto target = EvaluateXPath(store->get(), "/playlist/track[2]");
  DIE_IF_ERROR(target);
  auto fragment = ParseXml(
      "<track rating=\"5\"><title>New Single</title>"
      "<length>201</length></track>");
  DIE_IF_ERROR(fragment);
  auto stats = (*store)->InsertSubtree((*target)[0], InsertPosition::kBefore,
                                       *(*fragment)->root_element());
  DIE_IF_ERROR(stats);
  std::cout << "\ninserted " << stats->nodes_inserted << " nodes, renumbered "
            << stats->rows_renumbered << " existing rows\n";

  // 5. Publish the updated document back to XML.
  auto rebuilt = (*store)->ReconstructDocument();
  DIE_IF_ERROR(rebuilt);
  std::cout << "\nupdated document:\n"
            << WriteXml(**rebuilt, {.indent = 2}) << "\n";
  return 0;
}
