// Document archive: a persistent, file-backed collection of news documents
// — the paper's multi-document setting. Demonstrates:
//   * the file-backed buffer pool (pages live on disk, tiny RAM cache),
//   * a DocumentCollection with a relational catalog,
//   * collection-wide ordered queries,
//   * the whole-path SQL translation mode (printing the generated SQL).
//
// Build & run:  ./build/examples/example_document_archive [archive.db]

#include <cstdio>
#include <iostream>
#include <memory>

#include "src/core/collection.h"
#include "src/core/sql_translator.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_generator.h"

using namespace oxml;

int main(int argc, char** argv) {
  DatabaseOptions db_opts;
  db_opts.file_path = argc > 1 ? argv[1] : "/tmp/oxml_archive.db";
  db_opts.buffer_capacity = 64;  // 64 frames x 8 KiB = 512 KiB of cache

  auto dbr = Database::Open(db_opts);
  if (!dbr.ok()) {
    std::cerr << dbr.status() << "\n";
    return 1;
  }
  std::unique_ptr<Database> db = std::move(dbr).value();

  auto cr = DocumentCollection::Create(db.get(), OrderEncoding::kDewey,
                                       {.gap = 16}, "archive");
  if (!cr.ok()) {
    std::cerr << cr.status() << "\n";
    return 1;
  }
  std::unique_ptr<DocumentCollection> archive = std::move(cr).value();

  // Ingest a week of editions.
  const char* const kDays[] = {"mon", "tue", "wed", "thu", "fri"};
  for (int d = 0; d < 5; ++d) {
    NewsGeneratorOptions opts;
    opts.seed = 7000 + d;
    opts.sections = 8 + d;
    opts.paragraphs_per_section = 6;
    auto doc = GenerateNewsXml(opts);
    auto added = archive->AddDocument(std::string("edition-") + kDays[d],
                                      *doc);
    if (!added.ok()) {
      std::cerr << added.status() << "\n";
      return 1;
    }
    std::cout << "ingested edition-" << kDays[d] << " ("
              << doc->TotalNodes() << " nodes)\n";
  }

  // Collection-wide ordered query: the lead paragraph of section 1 of
  // every edition, in archive order.
  std::cout << "\nfirst paragraph of each edition:\n";
  auto leads = archive->QueryAll("/nitf/body/section[1]/para[1]");
  if (!leads.ok()) {
    std::cerr << leads.status() << "\n";
    return 1;
  }
  for (const auto& match : *leads) {
    auto store = archive->GetDocument(match.document);
    if (!store.ok()) return 1;
    auto text = (*store)->StringValue(match.node);
    if (!text.ok()) return 1;
    std::string excerpt = *text;
    if (excerpt.size() > 60) excerpt = excerpt.substr(0, 57) + "...";
    std::cout << "  " << match.document << ": " << excerpt << "\n";
  }

  // Show the generated SQL for a whole-path translation.
  auto store = archive->GetDocument("edition-wed");
  if (!store.ok()) return 1;
  auto sql = TranslateXPathToSql(**store, "/nitf/body/section/title");
  if (!sql.ok()) {
    std::cerr << sql.status() << "\n";
    return 1;
  }
  std::cout << "\nXPath /nitf/body/section/title translates to one SQL "
               "statement:\n  "
            << *sql << "\n";
  auto titles = EvaluateXPathViaSql(*store, "/nitf/body/section/title");
  if (!titles.ok()) return 1;
  std::cout << "  -> " << titles->size() << " titles in document order\n";

  // Buffer-pool behaviour: the archive is bigger than the cache.
  std::cout << "\nstorage: " << db->GetStorageStats().heap_pages
            << " heap pages on disk, buffer pool hits="
            << db->buffer_pool()->hit_count()
            << " misses=" << db->buffer_pool()->miss_count() << "\n";

  // Retention: drop the oldest edition.
  if (!archive->RemoveDocument("edition-mon").ok()) return 1;
  std::cout << "dropped edition-mon; " << archive->size()
            << " editions remain: ";
  for (const std::string& name : archive->DocumentNames()) {
    std::cout << name << " ";
  }
  std::cout << "\n";
  return 0;
}
