// Interactive XPath shell: load an XML file (or a bundled sample) into any
// of the three encodings and query it interactively.
//
//   ./build/examples/example_xpath_shell [file.xml] [global|local|dewey]
//
// Commands:
//   <xpath>          evaluate and print matches (e.g. //section/title)
//   .sql <xpath>     show the single-statement SQL translation (when the
//                    query is translatable) and run it
//   .stats           database statement/row counters
//   .dump            reconstruct and print the whole document
//   .quit            exit

#include <iostream>
#include <memory>
#include <string>

#include "src/common/strings.h"
#include "src/core/ordered_store.h"
#include "src/core/sql_translator.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

using namespace oxml;

namespace {

constexpr const char* kSample = R"(<library>
  <shelf label="databases">
    <book year="1994"><title>Transaction Processing</title></book>
    <book year="2002"><title>Storing Ordered XML</title></book>
  </shelf>
  <shelf label="systems">
    <book year="1999"><title>The Practice of Programming</title></book>
  </shelf>
</library>)";

}  // namespace

int main(int argc, char** argv) {
  OrderEncoding enc = OrderEncoding::kDewey;
  std::unique_ptr<XmlDocument> doc;

  if (argc >= 2) {
    auto parsed = ParseXmlFile(argv[1]);
    if (!parsed.ok()) {
      std::cerr << "cannot load " << argv[1] << ": " << parsed.status()
                << "\n";
      return 1;
    }
    doc = std::move(parsed).value();
  } else {
    auto parsed = ParseXml(kSample);
    if (!parsed.ok()) return 1;
    doc = std::move(parsed).value();
  }
  if (argc >= 3) {
    std::string which = ToLower(argv[2]);
    if (which == "global") {
      enc = OrderEncoding::kGlobal;
    } else if (which == "local") {
      enc = OrderEncoding::kLocal;
    } else if (which == "dewey") {
      enc = OrderEncoding::kDewey;
    } else {
      std::cerr << "unknown encoding: " << argv[2] << "\n";
      return 1;
    }
  }

  auto dbr = Database::Open();
  if (!dbr.ok()) return 1;
  std::unique_ptr<Database> db = std::move(dbr).value();
  auto sr = OrderedXmlStore::Create(db.get(), enc);
  if (!sr.ok()) return 1;
  std::unique_ptr<OrderedXmlStore> store = std::move(sr).value();
  if (auto st = store->LoadDocument(*doc); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }

  std::cout << "loaded " << doc->TotalNodes() << " nodes under the "
            << OrderEncodingToString(enc)
            << " encoding; type an XPath, or .quit\n";

  std::string line;
  while (std::cout << "xpath> " << std::flush, std::getline(std::cin, line)) {
    line = Trim(line);
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".stats") {
      const ExecStats* s = db->stats();
      std::cout << "statements=" << s->statements
                << " rows_scanned=" << s->rows_scanned
                << " index_probes=" << s->index_probes
                << " rows_inserted=" << s->rows_inserted << "\n";
      continue;
    }
    if (StartsWith(line, ".sql ")) {
      std::string xpath = Trim(line.substr(5));
      auto sql = TranslateXPathToSql(*store, xpath);
      if (!sql.ok()) {
        std::cout << sql.status() << "\n";
        continue;
      }
      std::cout << *sql << "\n";
      auto rows = EvaluateXPathViaSql(store.get(), xpath);
      if (!rows.ok()) {
        std::cout << rows.status() << "\n";
        continue;
      }
      std::cout << rows->size() << " row(s)\n";
      continue;
    }
    if (line == ".dump") {
      auto rebuilt = store->ReconstructDocument();
      if (!rebuilt.ok()) {
        std::cout << rebuilt.status() << "\n";
        continue;
      }
      std::cout << WriteXml(**rebuilt, {.indent = 2}) << "\n";
      continue;
    }

    auto results = EvaluateXPath(store.get(), line);
    if (!results.ok()) {
      std::cout << results.status() << "\n";
      continue;
    }
    std::cout << results->size() << " match(es)\n";
    size_t shown = 0;
    for (const StoredNode& n : *results) {
      if (++shown > 10) {
        std::cout << "  ... (" << results->size() - 10 << " more)\n";
        break;
      }
      if (n.kind == XmlNodeKind::kElement) {
        auto subtree = store->ReconstructSubtree(n);
        if (subtree.ok()) {
          std::string xml = WriteXml(**subtree);
          if (xml.size() > 120) xml = xml.substr(0, 117) + "...";
          std::cout << "  " << xml << "\n";
        }
      } else {
        std::cout << "  " << XmlNodeKindToString(n.kind) << " \"" << n.value
                  << "\"\n";
      }
    }
  }
  return 0;
}
