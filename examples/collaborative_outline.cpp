// Collaborative outline editing: a shared project outline is edited with
// moves, inserts and deletes while every revision must render in exactly
// the order the editors arranged. The example maintains the same outline
// in all three encodings simultaneously, applies an identical edit script
// to each, and verifies the reconstructed documents stay byte-identical —
// a living demonstration that all three schemes implement the same ordered
// data model with different costs.
//
// Build & run:  ./build/examples/example_collaborative_outline

#include <iostream>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/core/ordered_store.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

using namespace oxml;

namespace {

constexpr const char* kOutline = R"(<outline project="orion">
  <item status="done"><title>collect requirements</title></item>
  <item status="active"><title>design storage layer</title>
    <item status="active"><title>choose order encoding</title></item>
    <item status="todo"><title>write schema migration</title></item>
  </item>
  <item status="todo"><title>implement query translator</title></item>
</outline>)";

struct Replica {
  OrderEncoding encoding;
  std::unique_ptr<Database> db;
  std::unique_ptr<OrderedXmlStore> store;
  UpdateStats total;
};

bool ApplyEverywhere(std::vector<Replica>& replicas,
                     const std::string& target_xpath, InsertPosition pos,
                     const XmlNode& fragment) {
  for (Replica& r : replicas) {
    auto target = EvaluateXPath(r.store.get(), target_xpath);
    if (!target.ok() || target->empty()) {
      std::cerr << OrderEncodingToString(r.encoding)
                << ": target not found: " << target_xpath << "\n";
      return false;
    }
    auto stats = r.store->InsertSubtree((*target)[0], pos, fragment);
    if (!stats.ok()) {
      std::cerr << stats.status() << "\n";
      return false;
    }
    r.total.Add(*stats);
  }
  return true;
}

bool DeleteEverywhere(std::vector<Replica>& replicas,
                      const std::string& target_xpath) {
  for (Replica& r : replicas) {
    auto target = EvaluateXPath(r.store.get(), target_xpath);
    if (!target.ok() || target->empty()) return false;
    auto stats = r.store->DeleteSubtree((*target)[0]);
    if (!stats.ok()) return false;
    r.total.Add(*stats);
  }
  return true;
}

/// "Move" = delete + insert at the new position, the classic outline
/// reordering operation.
bool MoveEverywhere(std::vector<Replica>& replicas,
                    const std::string& source_xpath,
                    const std::string& target_xpath, InsertPosition pos) {
  for (Replica& r : replicas) {
    auto source = EvaluateXPath(r.store.get(), source_xpath);
    if (!source.ok() || source->empty()) return false;
    auto subtree = r.store->ReconstructSubtree((*source)[0]);
    if (!subtree.ok()) return false;
    auto del = r.store->DeleteSubtree((*source)[0]);
    if (!del.ok()) return false;
    r.total.Add(*del);
    auto target = EvaluateXPath(r.store.get(), target_xpath);
    if (!target.ok() || target->empty()) return false;
    auto ins = r.store->InsertSubtree((*target)[0], pos, **subtree);
    if (!ins.ok()) return false;
    r.total.Add(*ins);
  }
  return true;
}

}  // namespace

int main() {
  auto doc = ParseXml(kOutline);
  if (!doc.ok()) {
    std::cerr << doc.status() << "\n";
    return 1;
  }

  std::vector<Replica> replicas;
  for (OrderEncoding enc : {OrderEncoding::kGlobal, OrderEncoding::kLocal,
                            OrderEncoding::kDewey}) {
    Replica r;
    r.encoding = enc;
    auto dbr = Database::Open();
    if (!dbr.ok()) return 1;
    r.db = std::move(dbr).value();
    auto sr = OrderedXmlStore::Create(r.db.get(), enc, {.gap = 4});
    if (!sr.ok()) return 1;
    r.store = std::move(sr).value();
    if (!r.store->LoadDocument(**doc).ok()) return 1;
    replicas.push_back(std::move(r));
  }

  // --- the edit session ---------------------------------------------------
  auto urgent = ParseXml(
      "<item status=\"urgent\"><title>fix order bug</title></item>");
  auto review = ParseXml(
      "<item status=\"todo\"><title>code review</title></item>");
  auto bench = ParseXml(
      "<item status=\"todo\"><title>benchmark encodings</title></item>");
  if (!urgent.ok() || !review.ok() || !bench.ok()) return 1;

  // An urgent item jumps the queue to the top of the outline.
  if (!ApplyEverywhere(replicas, "/outline/item[1]", InsertPosition::kBefore,
                       *(*urgent)->root_element())) {
    return 1;
  }
  // Sub-task added inside the design item.
  if (!ApplyEverywhere(replicas,
                       "//item[title = 'design storage layer']",
                       InsertPosition::kLastChild,
                       *(*review)->root_element())) {
    return 1;
  }
  // Routine item appended at the end.
  if (!ApplyEverywhere(replicas, "/outline/item[last()]",
                       InsertPosition::kAfter, *(*bench)->root_element())) {
    return 1;
  }
  // The finished requirements item is archived (deleted).
  if (!DeleteEverywhere(replicas, "//item[@status = 'done']")) return 1;
  // Reprioritize: move the translator item right after the urgent one.
  if (!MoveEverywhere(replicas,
                      "//item[title = 'implement query translator']",
                      "/outline/item[1]", InsertPosition::kAfter)) {
    return 1;
  }

  // --- verify convergence -------------------------------------------------
  std::vector<std::string> renderings;
  for (Replica& r : replicas) {
    auto rebuilt = r.store->ReconstructDocument();
    if (!rebuilt.ok()) return 1;
    renderings.push_back(WriteXml(**rebuilt, {.indent = 2}));
  }
  bool converged =
      renderings[0] == renderings[1] && renderings[1] == renderings[2];

  std::cout << "final outline (identical across all three encodings: "
            << (converged ? "yes" : "NO!") << ")\n\n"
            << renderings[2] << "\n\n";
  std::cout << "edit-session cost per encoding:\n";
  for (const Replica& r : replicas) {
    std::cout << "  " << OrderEncodingToString(r.encoding) << ": "
              << r.total.nodes_inserted << " inserted, "
              << r.total.nodes_deleted << " deleted, "
              << r.total.rows_renumbered << " renumbered, "
              << r.total.statements << " SQL statements\n";
  }
  return converged ? 0 : 1;
}
