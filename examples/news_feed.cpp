// News-feed scenario (the paper's motivating workload): a news document
// whose section and paragraph order is meaningful. The example loads the
// same document under all three order encodings, runs an editor's day of
// work against each — breaking-news prepends, corrections in the middle,
// routine appends, ordered reads — and prints a side-by-side cost table.
//
// Build & run:  ./build/examples/example_news_feed

#include <cstdio>
#include <iostream>
#include <memory>

#include "src/common/random.h"
#include "src/core/ordered_store.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_parser.h"

using namespace oxml;

namespace {

struct Tally {
  int64_t inserts = 0;
  int64_t rows_renumbered = 0;
  int64_t renumber_events = 0;
  int64_t sql_statements = 0;
};

bool RunSession(OrderEncoding enc, const XmlDocument& doc, Tally* tally) {
  auto dbr = Database::Open();
  if (!dbr.ok()) return false;
  std::unique_ptr<Database> db = std::move(dbr).value();
  auto sr = OrderedXmlStore::Create(db.get(), enc, {.gap = 8});
  if (!sr.ok()) return false;
  std::unique_ptr<OrderedXmlStore> store = std::move(sr).value();
  if (!store->LoadDocument(doc).ok()) return false;

  auto breaking = ParseXml(
      "<section id=\"breaking\"><title>BREAKING</title>"
      "<para class=\"lead\">just in</para></section>");
  auto correction = ParseXml("<para class=\"correction\">corrected</para>");
  auto routine = ParseXml("<para>evening wrap-up</para>");
  if (!breaking.ok() || !correction.ok() || !routine.ok()) return false;

  Random rng(2026);
  uint64_t statements_before = db->stats()->statements;

  for (int round = 0; round < 30; ++round) {
    auto body = EvaluateXPath(store.get(), "/nitf/body");
    if (!body.ok() || body->size() != 1) return false;

    // 1. Breaking news lands at the TOP of the body (worst case for the
    //    global encoding: everything after it shifts when gaps run out).
    auto s1 = store->InsertSubtree((*body)[0], InsertPosition::kFirstChild,
                                   *(*breaking)->root_element());
    if (!s1.ok()) return false;
    tally->rows_renumbered += s1->rows_renumbered;
    tally->renumber_events += s1->renumbering_triggered;
    ++tally->inserts;

    // 2. A correction is wedged into a random existing section.
    auto sections = store->Children((*body)[0], NodeTest::Tag("section"));
    if (!sections.ok() || sections->empty()) return false;
    auto& victim =
        (*sections)[rng.Uniform(0, static_cast<int64_t>(sections->size()) - 1)];
    auto paras = store->Children(victim, NodeTest::Tag("para"));
    if (!paras.ok()) return false;
    if (!paras->empty()) {
      auto& where =
          (*paras)[rng.Uniform(0, static_cast<int64_t>(paras->size()) - 1)];
      auto s2 = store->InsertSubtree(where, InsertPosition::kBefore,
                                     *(*correction)->root_element());
      if (!s2.ok()) return false;
      tally->rows_renumbered += s2->rows_renumbered;
      tally->renumber_events += s2->renumbering_triggered;
      ++tally->inserts;
    }

    // 3. Routine copy is appended to the LAST section (cheap everywhere).
    auto s3 = store->InsertSubtree(sections->back(),
                                   InsertPosition::kLastChild,
                                   *(*routine)->root_element());
    if (!s3.ok()) return false;
    tally->rows_renumbered += s3->rows_renumbered;
    tally->renumber_events += s3->renumbering_triggered;
    ++tally->inserts;

    // 4. Readers meanwhile ask ordered questions.
    if (!EvaluateXPath(store.get(), "//para[@class = 'lead']").ok()) {
      return false;
    }
    if (!EvaluateXPath(store.get(), "/nitf/body/section[1]/para[1]").ok()) {
      return false;
    }
  }
  tally->sql_statements =
      static_cast<int64_t>(db->stats()->statements - statements_before);
  return true;
}

}  // namespace

int main() {
  auto doc = GenerateNewsXml({.seed = 9, .sections = 20,
                              .paragraphs_per_section = 12});
  std::cout << "news document: " << doc->TotalNodes() << " nodes\n\n";
  std::printf("%-8s %10s %16s %18s %14s\n", "encoding", "inserts",
              "rows renumbered", "renumber events", "SQL stmts");
  std::printf("%s\n", std::string(70, '-').c_str());

  for (OrderEncoding enc : {OrderEncoding::kGlobal, OrderEncoding::kLocal,
                            OrderEncoding::kDewey}) {
    Tally tally;
    if (!RunSession(enc, *doc, &tally)) {
      std::cerr << "session failed for " << OrderEncodingToString(enc)
                << "\n";
      return 1;
    }
    std::printf("%-8s %10lld %16lld %18lld %14lld\n",
                OrderEncodingToString(enc),
                static_cast<long long>(tally.inserts),
                static_cast<long long>(tally.rows_renumbered),
                static_cast<long long>(tally.renumber_events),
                static_cast<long long>(tally.sql_statements));
  }
  std::cout << "\nDewey keeps renumbering local to sibling subtrees while\n"
               "still answering every ordered query with one index range\n"
               "scan — the paper's recommended trade-off.\n";
  return 0;
}
