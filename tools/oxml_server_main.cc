// oxml_server — serves one database over OXWP v1 (docs/INTERNALS.md §13).
//
//   oxml_server [--host H] [--port P] [--db FILE] [--open-existing]
//               [--workers N] [--max-sessions N] [--max-concurrent N]
//               [--max-queued N] [--idle-timeout-ms MS] [--auth TOKEN]
//               [--load FILE.xml [--store NAME] [--encoding global|local|dewey]]
//
// With --db the database is file-backed (WAL on); otherwise it is
// memory-resident. --load shreds an XML document into a store that the
// protocol's XPath frame can query by name (default name "doc").

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/core/ordered_store.h"
#include "src/server/server.h"
#include "src/xml/xml_parser.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

bool ParseEncoding(const char* s, oxml::OrderEncoding* out) {
  if (std::strcmp(s, "global") == 0) {
    *out = oxml::OrderEncoding::kGlobal;
  } else if (std::strcmp(s, "local") == 0) {
    *out = oxml::OrderEncoding::kLocal;
  } else if (std::strcmp(s, "dewey") == 0) {
    *out = oxml::OrderEncoding::kDewey;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oxml;
  server::ServerOptions sopts;
  DatabaseOptions dopts;
  std::string load_file;
  std::string store_name = "doc";
  OrderEncoding encoding = OrderEncoding::kGlobal;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      sopts.host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      sopts.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (std::strcmp(argv[i], "--db") == 0) {
      dopts.file_path = next("--db");
    } else if (std::strcmp(argv[i], "--open-existing") == 0) {
      dopts.open_existing = true;
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      sopts.worker_threads = static_cast<size_t>(std::atoi(next("--workers")));
    } else if (std::strcmp(argv[i], "--max-sessions") == 0) {
      sopts.session.max_sessions =
          static_cast<size_t>(std::atoi(next("--max-sessions")));
    } else if (std::strcmp(argv[i], "--max-concurrent") == 0) {
      sopts.session.max_concurrent_statements =
          static_cast<size_t>(std::atoi(next("--max-concurrent")));
    } else if (std::strcmp(argv[i], "--max-queued") == 0) {
      sopts.session.max_queued_statements =
          static_cast<size_t>(std::atoi(next("--max-queued")));
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      sopts.session.idle_timeout_ms = std::atoll(next("--idle-timeout-ms"));
    } else if (std::strcmp(argv[i], "--auth") == 0) {
      sopts.auth_token = next("--auth");
    } else if (std::strcmp(argv[i], "--load") == 0) {
      load_file = next("--load");
    } else if (std::strcmp(argv[i], "--store") == 0) {
      store_name = next("--store");
    } else if (std::strcmp(argv[i], "--encoding") == 0) {
      if (!ParseEncoding(next("--encoding"), &encoding)) {
        std::fprintf(stderr, "unknown encoding (global|local|dewey)\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  auto db = Database::Open(dopts);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  std::unique_ptr<OrderedXmlStore> store;
  if (!load_file.empty()) {
    auto doc = ParseXmlFile(load_file);
    if (!doc.ok()) {
      std::fprintf(stderr, "parse %s: %s\n", load_file.c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    StoreOptions store_opts;
    store_opts.table_name = store_name;
    auto created = OrderedXmlStore::Create(db->get(), encoding, store_opts);
    if (!created.ok()) {
      std::fprintf(stderr, "create store: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    store = std::move(*created);
    Status st = store->LoadDocument(**doc);
    if (!st.ok()) {
      std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  server::OxmlServer srv(db->get(), sopts);
  if (store) srv.RegisterStore(store_name, store.get());
  Status st = srv.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("oxml_server listening on %s:%u\n", srv.host().c_str(),
              srv.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) ::usleep(100 * 1000);

  srv.Stop();
  return 0;
}
