// oxml_shell — interactive OXWP v1 client.
//
//   oxml_shell [--host H] --port P [--auth TOKEN]
//
// Lines are SQL by default (SELECT prints a table, anything else an
// affected-row count). Meta commands start with a dot:
//
//   .begin / .commit / .rollback      transaction control
//   .xpath STORE PATH                 evaluate XPath against a server store
//   .timeout MS                       per-statement deadline for this session
//   .ping                             liveness round trip
//   .quit                             orderly goodbye

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "src/server/client.h"

int main(int argc, char** argv) {
  using namespace oxml;
  server::ClientOptions copts;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      copts.host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      copts.port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (std::strcmp(argv[i], "--auth") == 0) {
      copts.auth_token = next("--auth");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (copts.port == 0) {
    std::fprintf(stderr, "usage: oxml_shell [--host H] --port P\n");
    return 2;
  }

  auto client = server::OxmlClient::Connect(copts);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }
  std::printf("connected: session %llu\n",
              static_cast<unsigned long long>((*client)->session_id()));

  std::string line;
  while (std::printf("oxml> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line[0] == '.') {
      std::istringstream iss(line);
      std::string cmd;
      iss >> cmd;
      Status st;
      if (cmd == ".quit" || cmd == ".exit") {
        st = (*client)->Goodbye();
        if (!st.ok()) std::printf("%s\n", st.ToString().c_str());
        break;
      } else if (cmd == ".begin") {
        st = (*client)->Begin();
      } else if (cmd == ".commit") {
        st = (*client)->Commit();
      } else if (cmd == ".rollback") {
        st = (*client)->Rollback();
      } else if (cmd == ".ping") {
        st = (*client)->Ping();
      } else if (cmd == ".timeout") {
        int64_t ms = -1;
        iss >> ms;
        st = (*client)->SetSessionOptions(ms, -1);
      } else if (cmd == ".xpath") {
        std::string store, xpath;
        iss >> store;
        std::getline(iss, xpath);
        while (!xpath.empty() && xpath.front() == ' ') xpath.erase(0, 1);
        auto sigs = (*client)->XPath(store, xpath);
        if (!sigs.ok()) {
          std::printf("%s\n", sigs.status().ToString().c_str());
        } else {
          for (const std::string& s : *sigs) std::printf("%s\n", s.c_str());
          std::printf("(%zu nodes)\n", sigs->size());
        }
        continue;
      } else {
        std::printf("unknown command %s\n", cmd.c_str());
        continue;
      }
      std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
      continue;
    }

    // SQL. SELECTs go through the cursor path; everything else reports the
    // affected-row count.
    std::string head = line.substr(0, line.find_first_of(" \t"));
    for (char& c : head) c = static_cast<char>(std::toupper(c));
    if (head == "SELECT") {
      auto rs = (*client)->Query(line);
      if (!rs.ok()) {
        std::printf("%s\n", rs.status().ToString().c_str());
      } else {
        std::printf("%s(%zu rows)\n", rs->ToString().c_str(),
                    rs->rows.size());
      }
    } else {
      auto affected = (*client)->Execute(line);
      if (!affected.ok()) {
        std::printf("%s\n", affected.status().ToString().c_str());
      } else {
        std::printf("ok, %lld rows\n",
                    static_cast<long long>(*affected));
      }
    }
  }
  return 0;
}
