// Experiment E5 — bulk subtree inserts (paper: inserting whole fragments,
// e.g. a complete section, at random positions).
//
// Expected shape: Global must find (or create) a contiguous ordinal range
// for the whole fragment, so its renumbering probability grows with the
// fragment size; Dewey and Local need only one sibling slot regardless of
// fragment size.

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/xml/xml_writer.h"

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

std::unique_ptr<XmlNode> MakeFragment(int paragraphs) {
  auto section = XmlNode::Element("section");
  section->SetAttribute("id", "bulk");
  XmlNode* title = section->AppendChild(XmlNode::Element("title"));
  title->AppendChild(XmlNode::Text("inserted section"));
  for (int p = 0; p < paragraphs; ++p) {
    XmlNode* para = section->AppendChild(XmlNode::Element("para"));
    para->AppendChild(
        XmlNode::Text("bulk paragraph number " + std::to_string(p)));
  }
  return section;
}

void BM_SubtreeInsert(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  int fragment_paras = static_cast<int>(SmokeCapped(state.range(1), 25));
  const int kSections = static_cast<int>(SmokeScaled(100, 20));
  const int kOpsPerIteration = static_cast<int>(SmokeScaled(25, 5));

  auto doc = NewsDoc(kSections, static_cast<int>(SmokeScaled(15, 5)));
  auto fragment = MakeFragment(fragment_paras);

  int64_t renumbered = 0;
  int64_t renumber_events = 0;
  int64_t ops = 0;
  ExecStats exec;
  for (auto _ : state) {
    state.PauseTiming();
    StoreFixture f = MakeLoadedStore(enc, *doc, /*gap=*/8);
    auto body = EvaluateXPath(f.store.get(), "/nitf/body");
    OXML_BENCH_OK(body);
    Random rng(11);
    state.ResumeTiming();

    for (int op = 0; op < kOpsPerIteration; ++op) {
      auto target = f.store->ChildAt(
          (*body)[0], NodeTest::Tag("section"),
          static_cast<size_t>(rng.Uniform(0, kSections - 1)));
      OXML_BENCH_OK(target);
      auto stats =
          f.store->InsertSubtree(*target, InsertPosition::kBefore, *fragment);
      OXML_BENCH_OK(stats);
      renumbered += stats->rows_renumbered;
      renumber_events += stats->renumbering_triggered ? 1 : 0;
      ++ops;
    }
    exec = *f.db->stats();
  }
  state.counters["fragment_nodes"] =
      static_cast<double>(fragment->SubtreeSize());
  state.counters["rows_renumbered_per_op"] =
      static_cast<double>(renumbered) / static_cast<double>(ops);
  state.counters["renumber_event_pct"] =
      100.0 * static_cast<double>(renumber_events) /
      static_cast<double>(ops);
  ReportExecStats(state, exec);
  state.SetLabel(OrderEncodingToString(enc));
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_SubtreeInsert)
    ->ArgsProduct({{0, 1, 2}, {5, 25, 100}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

OXML_BENCH_MAIN();
