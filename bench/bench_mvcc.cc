// Experiment E18 — MVCC snapshot reads. Reader throughput against one
// shared store with and without a concurrent long-running writer, on both
// sides of the enable_mvcc switch:
//
//  * writer=0: baseline read throughput (the snapshot machinery idles —
//    this measures its overhead on uncontended reads).
//  * writer=1, mvcc=1: a background thread keeps a write transaction open
//    almost continuously (Begin → delete a subtree → Rollback, no pauses).
//    Readers are served committed page versions and index deltas; their
//    throughput should stay within a small factor of the uncontended run.
//  * writer=1, mvcc=0: the pre-MVCC discipline — Begin holds the statement
//    latch exclusively for the transaction's lifetime, so readers only run
//    in the gaps between transactions and throughput collapses.
//
// The version-chain counters (snapshot_reads, versions_retained,
// version_chain_max) are attached to every report line; under writer=1,
// mvcc=1 a zero snapshot_reads would mean the benchmark never actually
// exercised the snapshot path.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

int Sections() { return static_cast<int>(SmokeScaled(60, 10)); }
int Paragraphs() { return static_cast<int>(SmokeScaled(10, 4)); }

StoreFixture MakeMvccStore(OrderEncoding enc, bool mvcc) {
  DatabaseOptions opts;
  opts.enable_mvcc = mvcc;
  StoreFixture f;
  auto dbr = Database::Open(opts);
  OXML_BENCH_CHECK(dbr.ok());
  f.db = std::move(dbr).value();
  auto sr = OrderedXmlStore::Create(f.db.get(), enc, StoreOptions{});
  OXML_BENCH_CHECK(sr.ok());
  f.store = std::move(sr).value();
  auto doc = NewsDoc(Sections(), Paragraphs());
  OXML_BENCH_CHECK(f.store->LoadDocument(*doc).ok());
  return f;
}

// One fixture per (encoding, mvcc) pair, shared by the reader threads.
StoreFixture& SharedFixture(OrderEncoding enc, bool mvcc) {
  static auto* fixtures = new std::map<int, StoreFixture>();
  int key = (static_cast<int>(enc) << 1) | (mvcc ? 1 : 0);
  auto it = fixtures->find(key);
  if (it == fixtures->end()) {
    it = fixtures->emplace(key, MakeMvccStore(enc, mvcc)).first;
  }
  return it->second;
}

// The long writer: open a transaction, delete one subtree inside it, sit
// on the open transaction for a moment, roll back, repeat. Every round
// publishes page versions and index deltas; nothing ever commits, so the
// readers' expected answer never changes.
void WriterLoop(StoreFixture* f, std::atomic<bool>* stop) {
  while (!stop->load(std::memory_order_acquire)) {
    OXML_BENCH_CHECK(f->db->Begin().ok());
    auto paras = EvaluateXPath(f->store.get(), "//para");  // owner read
    OXML_BENCH_OK(paras);
    if (!paras->empty()) {
      OXML_BENCH_OK(f->store->DeleteSubtree(paras->back()));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    OXML_BENCH_CHECK(f->db->Rollback().ok());
  }
}

// N benchmark threads run the read-only mix (XPath tag scan + aggregate)
// while the writer (if any) churns. Reported per-thread by the framework;
// items_processed gives the aggregate statement rate.
void BM_SnapshotReaders(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  bool with_writer = state.range(1) != 0;
  bool mvcc = state.range(2) != 0;
  StoreFixture& f = SharedFixture(enc, mvcc);

  static std::atomic<bool> stop{false};
  static std::thread writer;
  if (state.thread_index() == 0 && with_writer) {
    stop.store(false, std::memory_order_release);
    writer = std::thread(WriterLoop, &f, &stop);
  }

  int64_t statements = 0;
  for (auto _ : state) {
    auto r = EvaluateXPath(f.store.get(), "//para");
    OXML_BENCH_OK(r);
    benchmark::DoNotOptimize(r->size());
    auto q = f.db->Query("SELECT COUNT(*) FROM nodes");
    OXML_BENCH_OK(q);
    benchmark::DoNotOptimize(q->rows.size());
    statements += 2;
  }
  state.SetItemsProcessed(statements);

  if (state.thread_index() == 0) {
    if (with_writer) {
      stop.store(true, std::memory_order_release);
      writer.join();
    }
    const ExecStats& s = *f.db->stats();
    state.counters["snapshot_reads"] =
        static_cast<double>(s.snapshot_reads);
    state.counters["versions_retained"] =
        static_cast<double>(s.versions_retained);
    state.counters["version_chain_max"] =
        static_cast<double>(s.version_chain_max);
    ReportExecStats(state, s);
    state.SetLabel(std::string(OrderEncodingToString(enc)) +
                   (with_writer ? "/writer" : "/no_writer") +
                   (mvcc ? "/mvcc" : "/exclusive") + "/readers_x" +
                   std::to_string(state.threads()));
  }
}

}  // namespace
}  // namespace bench
}  // namespace oxml

// Uncontended baseline (MVCC on, no writer) and the two contended modes.
BENCHMARK(oxml::bench::BM_SnapshotReaders)
    ->ArgsProduct({{0, 1, 2}, {0}, {1}})
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(oxml::bench::BM_SnapshotReaders)
    ->ArgsProduct({{0, 1, 2}, {1}, {0, 1}})
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

OXML_BENCH_MAIN();
