// Experiment E11 — macro-benchmark on the XMark-style auction site (the
// era's standard XML benchmark shape): a live-auction serving mix of
// ordered reads ("show the bid history", "latest bid") and ordered writes
// ("place a bid" = append before <current/>).
//
// Expected shape: this workload is append-dominated and positional, so all
// three encodings serve it well; Global pays its interval-maintenance tax
// on every bid, Dewey its longer keys, Local its positional counting —
// the gaps are small, matching the paper's observation that tail-insert
// workloads do not separate the encodings much.

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/xml/xml_parser.h"

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

void BM_AuctionServing(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  const int kAuctions = static_cast<int>(SmokeScaled(40, 8));
  const int kOpsPerIteration = static_cast<int>(SmokeScaled(60, 10));
  AuctionGeneratorOptions gen;
  gen.seed = 42;
  gen.items_per_region = 15;
  gen.open_auctions = kAuctions;
  gen.bids_per_auction = 6;
  gen.people = 20;
  auto doc = GenerateAuctionXml(gen);

  auto bid = ParseXml(
      "<bidder><date>2002-06-30</date><personref person=\"person1\"/>"
      "<increase>501</increase></bidder>");
  OXML_BENCH_OK(bid);

  int64_t renumbered = 0;
  ExecStats exec;
  for (auto _ : state) {
    state.PauseTiming();
    StoreFixture f = MakeLoadedStore(enc, *doc, /*gap=*/8);
    Random rng(17);
    state.ResumeTiming();

    for (int op = 0; op < kOpsPerIteration; ++op) {
      std::string auction =
          "auction" + std::to_string(rng.Uniform(0, kAuctions - 1));
      switch (rng.Uniform(0, 3)) {
        case 0: {  // show the full bid history, in order
          auto r = EvaluateXPath(f.store.get(),
                                 "//open_auction[@id = '" + auction +
                                     "']/bidder/increase");
          OXML_BENCH_OK(r);
          benchmark::DoNotOptimize(r->size());
          break;
        }
        case 1: {  // latest bid
          auto r = EvaluateXPath(f.store.get(),
                                 "//open_auction[@id = '" + auction +
                                     "']/bidder[last()]/increase");
          OXML_BENCH_OK(r);
          break;
        }
        case 2: {  // browse an item's ordered description
          auto r = EvaluateXPath(
              f.store.get(),
              "/site/regions/asia/item[" +
                  std::to_string(rng.Uniform(1, 15)) +
                  "]/description/parlist/listitem");
          OXML_BENCH_OK(r);
          break;
        }
        default: {  // place a bid: insert before <current/>
          auto current = EvaluateXPath(f.store.get(),
                                       "//open_auction[@id = '" + auction +
                                           "']/current");
          OXML_BENCH_OK(current);
          OXML_BENCH_CHECK(current->size() == 1);
          auto stats = f.store->InsertSubtree((*current)[0],
                                              InsertPosition::kBefore,
                                              *(*bid)->root_element());
          OXML_BENCH_OK(stats);
          renumbered += stats->rows_renumbered;
          break;
        }
      }
    }
    exec = *f.db->stats();
  }
  state.counters["rows_renumbered_total"] = static_cast<double>(renumbered);
  ReportExecStats(state, exec);
  state.SetLabel(OrderEncodingToString(enc));
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_AuctionServing)
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

OXML_BENCH_MAIN();
