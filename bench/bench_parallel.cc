// Experiment E16 — multi-threaded query execution. Two grains:
//
//  * Inter-query throughput: N client threads hammer one shared store with
//    read-only statements (google-benchmark's ->Threads()). The database
//    serves them under the shared statement latch; scaling measures how
//    much of the read path really runs concurrently.
//  * Intra-query scaling: a single large scan / structural-join query with
//    enable_parallel_execution on, sweeping the worker-pool size. Thread
//    count 0 is the serial baseline (parallel plans disabled).
//
// Expected shape (on a multi-core host): near-linear inter-query scaling
// until the core count, and parallel-plan speedups on QR1/QR5-class
// queries that grow with the pool. On a single-core container both grains
// degrade to ~1x — the counters (threads_used, morsels, parallel_joins)
// still prove the fan-out happened.

#include <benchmark/benchmark.h>

#include "src/core/sql_translator.h"

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

int Sections() { return static_cast<int>(SmokeScaled(150, 60)); }
int Paragraphs() { return static_cast<int>(SmokeScaled(20, 4)); }

// Builds a loaded store whose database has the execution pool configured.
// threads == 0 means "serial": parallel plans off, no pool.
StoreFixture MakeParallelStore(OrderEncoding enc, int threads) {
  DatabaseOptions opts;
  if (threads > 0) {
    opts.enable_parallel_execution = true;
    opts.num_threads = static_cast<size_t>(threads);
    opts.parallel_scan_min_rows = 256;
  }
  auto dbr = Database::Open(opts);
  OXML_BENCH_CHECK(dbr.ok());
  StoreFixture f;
  f.db = std::move(dbr).value();
  auto sr = OrderedXmlStore::Create(f.db.get(), enc, StoreOptions{});
  OXML_BENCH_CHECK(sr.ok());
  f.store = std::move(sr).value();
  auto doc = NewsDoc(Sections(), Paragraphs());
  OXML_BENCH_CHECK(f.store->LoadDocument(*doc).ok());
  return f;
}

// One shared serial-planned store per encoding for the inter-query grain
// (clients supply the concurrency; plans stay serial).
StoreFixture& SharedFixture(OrderEncoding enc) {
  static auto* fixtures = new std::map<OrderEncoding, StoreFixture>();
  auto it = fixtures->find(enc);
  if (it == fixtures->end()) {
    it = fixtures->emplace(enc, MakeParallelStore(enc, 0)).first;
  }
  return it->second;
}

// ----------------------------------------------------------- inter-query

// N benchmark threads each run the same read-only mix against one store:
// an XPath tag scan plus an aggregate over the node table. Throughput is
// reported per-thread by the framework; items_processed gives the
// aggregate statement rate.
void BM_InterQueryReaders(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  StoreFixture& f = SharedFixture(enc);

  int64_t statements = 0;
  for (auto _ : state) {
    auto r = EvaluateXPath(f.store.get(), "//para");
    OXML_BENCH_OK(r);
    benchmark::DoNotOptimize(r->size());
    auto q = f.db->Query("SELECT COUNT(*) FROM nodes");
    OXML_BENCH_OK(q);
    benchmark::DoNotOptimize(q->rows.size());
    statements += 2;
  }
  state.SetItemsProcessed(statements);
  if (state.thread_index() == 0) {
    ReportExecStats(state, f.db.get());
    state.SetLabel(std::string(OrderEncodingToString(enc)) +
                   "/readers_x" + std::to_string(state.threads()));
  }
}

// ------------------------------------------------------------ intra-query

// One large query, executed by a single client, with the planner's
// parallel operators fanning out over `threads` workers (0 = serial
// baseline). QR1 drives a full-tag scan, QR5 a descendant step (the step
// evaluator's parameterized probes), heap_count a bare heap scan, and
// structural a one-shot translated descendant query — the shape that plans
// ParallelStructuralJoinOp (Global/Dewey only; Local cannot express a
// descendant step as one SQL statement).
struct IntraQuery {
  const char* id;
  const char* xpath;     // null = run `sql` through Database::Query instead
  const char* sql;
  bool via_sql;          // evaluate xpath as one translated SQL statement
};

const IntraQuery kIntraQueries[] = {
    {"QR1_tag_scan", "//para", nullptr, false},
    {"QR5_descendant_ordered", "/nitf/body//para", nullptr, false},
    {"heap_count", nullptr, "SELECT COUNT(*) FROM nodes", false},
    {"structural_descendant", "//section//para", nullptr, true},
};

void BM_IntraQuery(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  const IntraQuery& q = kIntraQueries[state.range(1)];
  int threads = static_cast<int>(state.range(2));
  StoreFixture f = MakeParallelStore(enc, threads);

  size_t results = 0;
  for (auto _ : state) {
    if (q.via_sql) {
      auto r = EvaluateXPathViaSql(f.store.get(), q.xpath);
      OXML_BENCH_OK(r);
      results = r->size();
    } else if (q.xpath != nullptr) {
      auto r = EvaluateXPath(f.store.get(), q.xpath);
      OXML_BENCH_OK(r);
      results = r->size();
    } else {
      auto r = f.db->Query(q.sql);
      OXML_BENCH_OK(r);
      results = r->rows.size();
    }
    benchmark::DoNotOptimize(results);
  }
  OXML_BENCH_CHECK(results >= 1);
  state.counters["results"] = static_cast<double>(results);
  const ExecStats& s = *f.db->stats();
  state.counters["threads_used"] = static_cast<double>(s.threads_used);
  state.counters["morsels"] = static_cast<double>(s.morsels);
  state.counters["parallel_joins"] = static_cast<double>(s.parallel_joins);
  ReportExecStats(state, s);
  state.SetLabel(std::string(OrderEncodingToString(enc)) + "/" + q.id +
                 (threads == 0 ? "/serial"
                               : "/pool" + std::to_string(threads)));
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_InterQueryReaders)
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(oxml::bench::BM_IntraQuery)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}, {0, 1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
// The translated structural-join query only exists on Global and Dewey.
BENCHMARK(oxml::bench::BM_IntraQuery)
    ->ArgsProduct({{0, 2}, {3}, {0, 1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

OXML_BENCH_MAIN();
