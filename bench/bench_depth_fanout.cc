// Experiment E9 — document shape ablation: Dewey key length vs depth.
//
// The Dewey path grows with nesting depth, so deep documents inflate index
// storage and key-comparison cost; Global/Local keys are fixed-width.
// Loads chain documents of increasing depth and wide flat documents, then
// reports index bytes and descendant-query time per encoding.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

void BM_DeepDocument(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  size_t depth = static_cast<size_t>(SmokeCapped(state.range(1), 20));
  auto doc = GenerateDeepXml(depth);
  StoreFixture f = MakeLoadedStore(enc, *doc);

  auto root = f.store->Root();
  OXML_BENCH_OK(root);
  size_t results = 0;
  for (auto _ : state) {
    auto r = f.store->Descendants(*root, NodeTest::AnyElement());
    OXML_BENCH_OK(r);
    results = r->size();
    benchmark::DoNotOptimize(results);
  }
  OXML_BENCH_CHECK(results == depth - 1);
  StorageStats s = f.db->GetStorageStats();
  state.counters["index_bytes_per_row"] =
      static_cast<double>(s.index_bytes) /
      static_cast<double>(s.index_entries);
  ReportExecStats(state, f.db.get());
  state.SetLabel(std::string(OrderEncodingToString(enc)) + "/depth=" +
                 std::to_string(depth));
}

void BM_WideDocument(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  size_t width = static_cast<size_t>(SmokeCapped(state.range(1), 1000));
  auto doc = GenerateWideXml(width);
  StoreFixture f = MakeLoadedStore(enc, *doc);

  auto root = f.store->Root();
  OXML_BENCH_OK(root);
  size_t results = 0;
  for (auto _ : state) {
    auto r = f.store->Children(*root, NodeTest::Tag("item"));
    OXML_BENCH_OK(r);
    results = r->size();
    benchmark::DoNotOptimize(results);
  }
  OXML_BENCH_CHECK(results == width);
  StorageStats s = f.db->GetStorageStats();
  state.counters["index_bytes_per_row"] =
      static_cast<double>(s.index_bytes) /
      static_cast<double>(s.index_entries);
  ReportExecStats(state, f.db.get());
  state.SetLabel(std::string(OrderEncodingToString(enc)) + "/width=" +
                 std::to_string(width));
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_DeepDocument)
    ->ArgsProduct({{0, 1, 2}, {5, 20, 60}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(oxml::bench::BM_WideDocument)
    ->ArgsProduct({{0, 1, 2}, {1000, 10000}})
    ->Unit(benchmark::kMillisecond);

OXML_BENCH_MAIN();
