// Experiment E2 — ordered query performance (paper: query performance
// figure). Runs the QR1..QR8 ordered-query workload (DESIGN.md §4) against
// the same news document stored under each encoding.
//
// Expected shape: Global and Dewey answer every class with one or two index
// range scans; Local loses on descendant steps (iterated child joins) and
// on document-order output (ancestor-path reconstruction).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

// Smoke keeps >= 60 sections so QR4 (s10) and QR7 (position >= 50) still
// return rows; only the result-size floors are relaxed.
int Sections() { return static_cast<int>(SmokeScaled(150, 60)); }
int Paragraphs() { return static_cast<int>(SmokeScaled(20, 4)); }

StoreFixture& FixtureFor(OrderEncoding enc) {
  static auto* fixtures = new std::map<OrderEncoding, StoreFixture>();
  auto it = fixtures->find(enc);
  if (it == fixtures->end()) {
    auto doc = NewsDoc(Sections(), Paragraphs());
    it = fixtures->emplace(enc, MakeLoadedStore(enc, *doc)).first;
  }
  return it->second;
}

struct Query {
  const char* id;
  const char* xpath;
  size_t expected_min;  // sanity floor on result size
};

const Query kQueries[] = {
    {"QR1_tag_scan", "//para", 1000},
    {"QR2_nth_child", "/nitf/body/section[5]/title", 1},
    {"QR3_last_child", "/nitf/body/section[last()]/para[last()]", 1},
    {"QR4_following_sibling",
     "//section[@id = 's10']/following-sibling::section", 100},
    {"QR5_descendant_ordered", "/nitf/body//para", 1000},
    {"QR6_value_filter_doc_order", "//para[@class = 'lead']", 100},
    {"QR7_position_range",
     "/nitf/body/section[position() >= 50]/title", 100},
};

void BM_Query(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  const Query& q = kQueries[state.range(1)];
  StoreFixture& f = FixtureFor(enc);

  size_t results = 0;
  for (auto _ : state) {
    auto r = EvaluateXPath(f.store.get(), q.xpath);
    OXML_BENCH_OK(r);
    results = r->size();
    benchmark::DoNotOptimize(results);
  }
  OXML_BENCH_CHECK(results >= (SmokeMode() ? 1 : q.expected_min));
  state.counters["results"] = static_cast<double>(results);
  ReportExecStats(state, f.db.get());
  state.SetLabel(std::string(OrderEncodingToString(enc)) + "/" + q.id);
}

// QR8: subtree reconstruction of one selected section.
void BM_QuerySubtreeReconstruct(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  StoreFixture& f = FixtureFor(enc);
  auto section = EvaluateXPath(
      f.store.get(),
      "/nitf/body/section[" + std::to_string(Sections() / 2) + "]");
  OXML_BENCH_OK(section);
  OXML_BENCH_CHECK(section->size() == 1);

  for (auto _ : state) {
    auto subtree = f.store->ReconstructSubtree((*section)[0]);
    OXML_BENCH_OK(subtree);
    benchmark::DoNotOptimize(*subtree);
  }
  ReportExecStats(state, f.db.get());
  state.SetLabel(std::string(OrderEncodingToString(enc)) +
                 "/QR8_subtree_reconstruct");
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_Query)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4, 5, 6}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(oxml::bench::BM_QuerySubtreeReconstruct)
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->Unit(benchmark::kMillisecond);

OXML_BENCH_MAIN();
