// Experiment E7 — effect of sparse numbering (paper: gap-size figure).
//
// Loads the same document with gap g in {1, 2, 8, 32, 128} and performs a
// fixed random-insert workload. gap = 1 is dense numbering: every insert
// renumbers. Larger gaps amortize renumbering at the cost of storage
// (larger ordinals / longer Dewey components). Expected shape: renumbering
// frequency drops sharply with g for all encodings, with Global showing
// the largest absolute rows-renumbered at small g.

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/xml/xml_parser.h"

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

void BM_GapSensitivity(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  int64_t gap = state.range(1);
  const int kSections = static_cast<int>(SmokeScaled(60, 12));
  const int kParagraphs = static_cast<int>(SmokeScaled(15, 5));
  const int kOpsPerIteration = static_cast<int>(SmokeScaled(100, 20));

  auto doc = NewsDoc(kSections, kParagraphs);
  auto para = ParseXml("<para>gap probe paragraph</para>");
  OXML_BENCH_OK(para);
  const XmlNode& subtree = *(*para)->root_element();

  int64_t renumbered = 0;
  int64_t renumber_events = 0;
  int64_t ops = 0;
  uint64_t index_bytes = 0;
  ExecStats exec;
  for (auto _ : state) {
    state.PauseTiming();
    StoreFixture f = MakeLoadedStore(enc, *doc, gap);
    auto body = EvaluateXPath(f.store.get(), "/nitf/body");
    OXML_BENCH_OK(body);
    Random rng(3);
    state.ResumeTiming();

    for (int op = 0; op < kOpsPerIteration; ++op) {
      auto section = f.store->ChildAt(
          (*body)[0], NodeTest::Tag("section"),
          static_cast<size_t>(rng.Uniform(0, kSections - 1)));
      OXML_BENCH_OK(section);
      auto target = f.store->ChildAt(
          *section, NodeTest::Tag("para"),
          static_cast<size_t>(rng.Uniform(0, kParagraphs - 1)));
      OXML_BENCH_OK(target);
      auto stats =
          f.store->InsertSubtree(*target, InsertPosition::kBefore, subtree);
      OXML_BENCH_OK(stats);
      renumbered += stats->rows_renumbered;
      renumber_events += stats->renumbering_triggered ? 1 : 0;
      ++ops;
    }
    state.PauseTiming();
    index_bytes = f.db->GetStorageStats().index_bytes;
    exec = *f.db->stats();
    state.ResumeTiming();
  }
  state.counters["gap"] = static_cast<double>(gap);
  state.counters["rows_renumbered_per_op"] =
      static_cast<double>(renumbered) / static_cast<double>(ops);
  state.counters["renumber_event_pct"] =
      100.0 * static_cast<double>(renumber_events) /
      static_cast<double>(ops);
  state.counters["index_KB"] = static_cast<double>(index_bytes) / 1024.0;
  ReportExecStats(state, exec);
  state.SetLabel(std::string(OrderEncodingToString(enc)) + "/gap=" +
                 std::to_string(gap));
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_GapSensitivity)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 8, 32, 128}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

OXML_BENCH_MAIN();
