#ifndef OXML_BENCH_BENCH_UTIL_H_
#define OXML_BENCH_BENCH_UTIL_H_

// Shared setup helpers for the experiment-reproduction benchmarks.
// Each bench binary regenerates one table/figure of the paper's evaluation
// (see DESIGN.md section 4 for the experiment index).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "src/core/ordered_store.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_generator.h"

namespace oxml {
namespace bench {

/// Aborts the benchmark binary on an unexpected error (benchmarks must not
/// silently measure failure paths).
#define OXML_BENCH_CHECK(expr)                                       \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::fprintf(stderr, "bench check failed: %s (%s:%d)\n", #expr, \
                   __FILE__, __LINE__);                              \
      std::abort();                                                  \
    }                                                                \
  } while (0)

#define OXML_BENCH_OK(result_expr)                                    \
  do {                                                                \
    auto&& _r = (result_expr);                                        \
    if (!_r.ok()) {                                                   \
      std::fprintf(stderr, "bench status not OK: %s (%s:%d)\n",       \
                   _r.status().ToString().c_str(), __FILE__, __LINE__); \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

inline OrderEncoding EncodingFromIndex(int64_t idx) {
  switch (idx) {
    case 0:
      return OrderEncoding::kGlobal;
    case 1:
      return OrderEncoding::kLocal;
    default:
      return OrderEncoding::kDewey;
  }
}

/// A database plus one loaded store (the unit of benchmark state).
struct StoreFixture {
  std::unique_ptr<Database> db;
  std::unique_ptr<OrderedXmlStore> store;
};

inline StoreFixture MakeStore(OrderEncoding encoding, int64_t gap = 32) {
  StoreFixture f;
  auto dbr = Database::Open();
  OXML_BENCH_CHECK(dbr.ok());
  f.db = std::move(dbr).value();
  StoreOptions opts;
  opts.gap = gap;
  auto sr = OrderedXmlStore::Create(f.db.get(), encoding, opts);
  OXML_BENCH_CHECK(sr.ok());
  f.store = std::move(sr).value();
  return f;
}

inline StoreFixture MakeLoadedStore(OrderEncoding encoding,
                                    const XmlDocument& doc,
                                    int64_t gap = 32) {
  StoreFixture f = MakeStore(encoding, gap);
  auto st = f.store->LoadDocument(doc);
  OXML_BENCH_CHECK(st.ok());
  return f;
}

/// Attaches the engine's execution counters to the benchmark report:
/// plan-cache hit rate (fraction of statements that skipped parse + plan)
/// and rows produced by scans. Call once after the timing loop; for
/// benchmarks that rebuild their database per iteration, snapshot
/// `*db->stats()` inside the loop and pass the last snapshot.
inline void ReportExecStats(benchmark::State& state, const ExecStats& s) {
  state.counters["plan_hit_rate"] = s.PlanCacheHitRate();
  state.counters["rows_scanned"] = static_cast<double>(s.rows_scanned);
}

inline void ReportExecStats(benchmark::State& state, Database* db) {
  ReportExecStats(state, *db->stats());
}

/// The news-style document used across the experiments (sections of
/// paragraphs — the paper's motivating ordered workload).
inline std::unique_ptr<XmlDocument> NewsDoc(int sections, int paragraphs,
                                            uint64_t seed = 42) {
  NewsGeneratorOptions opts;
  opts.sections = sections;
  opts.paragraphs_per_section = paragraphs;
  opts.seed = seed;
  return GenerateNewsXml(opts);
}

}  // namespace bench
}  // namespace oxml

#endif  // OXML_BENCH_BENCH_UTIL_H_
