#ifndef OXML_BENCH_BENCH_UTIL_H_
#define OXML_BENCH_BENCH_UTIL_H_

// Shared setup helpers for the experiment-reproduction benchmarks.
// Each bench binary regenerates one table/figure of the paper's evaluation
// (see DESIGN.md section 4 for the experiment index).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/ordered_store.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_generator.h"

namespace oxml {
namespace bench {

/// True when the binary was invoked with --smoke (see OXML_BENCH_MAIN).
/// Smoke mode is a CI-oriented crash check: benchmarks shrink their
/// datasets and iteration counts so every binary finishes in seconds while
/// still exercising the full code path.
inline bool& SmokeMode() {
  static bool smoke = false;
  return smoke;
}

/// Picks the full-size or smoke-size value for a dataset knob.
inline int64_t SmokeScaled(int64_t full, int64_t smoke) {
  return SmokeMode() ? smoke : full;
}

/// Caps an externally supplied size (e.g. a benchmark Arg) under smoke.
inline int64_t SmokeCapped(int64_t value, int64_t cap) {
  return SmokeMode() ? std::min(value, cap) : value;
}

/// Aborts the benchmark binary on an unexpected error (benchmarks must not
/// silently measure failure paths).
#define OXML_BENCH_CHECK(expr)                                       \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::fprintf(stderr, "bench check failed: %s (%s:%d)\n", #expr, \
                   __FILE__, __LINE__);                              \
      std::abort();                                                  \
    }                                                                \
  } while (0)

#define OXML_BENCH_OK(result_expr)                                    \
  do {                                                                \
    auto&& _r = (result_expr);                                        \
    if (!_r.ok()) {                                                   \
      std::fprintf(stderr, "bench status not OK: %s (%s:%d)\n",       \
                   _r.status().ToString().c_str(), __FILE__, __LINE__); \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

inline OrderEncoding EncodingFromIndex(int64_t idx) {
  switch (idx) {
    case 0:
      return OrderEncoding::kGlobal;
    case 1:
      return OrderEncoding::kLocal;
    default:
      return OrderEncoding::kDewey;
  }
}

/// A database plus one loaded store (the unit of benchmark state).
struct StoreFixture {
  std::unique_ptr<Database> db;
  std::unique_ptr<OrderedXmlStore> store;
};

inline StoreFixture MakeStore(OrderEncoding encoding,
                              const DatabaseOptions& db_opts,
                              int64_t gap = 32) {
  StoreFixture f;
  auto dbr = Database::Open(db_opts);
  OXML_BENCH_CHECK(dbr.ok());
  f.db = std::move(dbr).value();
  StoreOptions opts;
  opts.gap = gap;
  auto sr = OrderedXmlStore::Create(f.db.get(), encoding, opts);
  OXML_BENCH_CHECK(sr.ok());
  f.store = std::move(sr).value();
  return f;
}

inline StoreFixture MakeStore(OrderEncoding encoding, int64_t gap = 32) {
  return MakeStore(encoding, DatabaseOptions{}, gap);
}

inline StoreFixture MakeLoadedStore(OrderEncoding encoding,
                                    const XmlDocument& doc,
                                    int64_t gap = 32) {
  StoreFixture f = MakeStore(encoding, gap);
  auto st = f.store->LoadDocument(doc);
  OXML_BENCH_CHECK(st.ok());
  return f;
}

/// Attaches the engine's execution counters to the benchmark report:
/// plan-cache hit rate (fraction of statements that skipped parse + plan)
/// and rows produced by scans. Call once after the timing loop; for
/// benchmarks that rebuild their database per iteration, snapshot
/// `*db->stats()` inside the loop and pass the last snapshot.
inline void ReportExecStats(benchmark::State& state, const ExecStats& s) {
  state.counters["plan_hit_rate"] = s.PlanCacheHitRate();
  state.counters["rows_scanned"] = static_cast<double>(s.rows_scanned);
  // Join-strategy mix and sort behaviour: which physical join the planner
  // chose (counted per Open) and how many ORDER BY clauses were satisfied
  // by input order instead of a sort. Zero-valued join counters are
  // omitted to keep the report lines readable.
  auto join = [&state](const char* name, uint64_t n) {
    if (n > 0) state.counters[name] = static_cast<double>(n);
  };
  join("joins_nlj", s.joins_nested_loop);
  join("joins_hash", s.joins_hash);
  join("joins_inlj", s.joins_index_nested_loop);
  join("joins_merge", s.joins_merge);
  join("joins_structural", s.joins_structural);
  state.counters["sorts_performed"] = static_cast<double>(s.sorts_performed);
  state.counters["sorts_elided"] = static_cast<double>(s.sorts_elided);
}

inline void ReportExecStats(benchmark::State& state, Database* db) {
  ReportExecStats(state, *db->stats());
}

/// The news-style document used across the experiments (sections of
/// paragraphs — the paper's motivating ordered workload).
inline std::unique_ptr<XmlDocument> NewsDoc(int sections, int paragraphs,
                                            uint64_t seed = 42) {
  NewsGeneratorOptions opts;
  opts.sections = sections;
  opts.paragraphs_per_section = paragraphs;
  opts.seed = seed;
  return GenerateNewsXml(opts);
}

}  // namespace bench
}  // namespace oxml

/// Drop-in replacement for BENCHMARK_MAIN() that understands two extra
/// flags:
///   --smoke        CI crash check — flips SmokeMode() and caps per-
///                  benchmark wall time so every binary finishes in seconds.
///   --json <path>  shorthand for --benchmark_out=<path> with JSON format;
///                  CI uses it to archive machine-readable results.
/// All other arguments pass through to the benchmark library untouched.
#define OXML_BENCH_MAIN()                                                  \
  int main(int argc, char** argv) {                                        \
    std::vector<char*> args;                                               \
    static char smoke_min_time[] = "--benchmark_min_time=0.01";            \
    static char json_format[] = "--benchmark_out_format=json";             \
    static std::string json_out;                                           \
    for (int i = 0; i < argc; ++i) {                                       \
      if (std::string(argv[i]) == "--smoke") {                             \
        ::oxml::bench::SmokeMode() = true;                                 \
      } else if (std::string(argv[i]) == "--json" && i + 1 < argc) {       \
        json_out = std::string("--benchmark_out=") + argv[++i];            \
      } else {                                                             \
        args.push_back(argv[i]);                                           \
      }                                                                    \
    }                                                                      \
    if (!json_out.empty()) {                                               \
      args.push_back(json_out.data());                                     \
      args.push_back(json_format);                                         \
    }                                                                      \
    if (::oxml::bench::SmokeMode()) args.push_back(smoke_min_time);        \
    int bench_argc = static_cast<int>(args.size());                        \
    ::benchmark::Initialize(&bench_argc, args.data());                     \
    if (::benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) \
      return 1;                                                            \
    ::benchmark::RunSpecifiedBenchmarks();                                 \
    ::benchmark::Shutdown();                                               \
    return 0;                                                              \
  }

#endif  // OXML_BENCH_BENCH_UTIL_H_
