// E14 — differential fuzz harness throughput. Measures how fast one fuzz
// case replays (DOM oracle + all three encodings, with per-mutation
// Validate() and full reconstruction compare), which bounds how much
// coverage the CI fuzz-smoke budget buys. Also isolates case generation
// so harness overhead can be separated from engine time.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tests/fuzz/fuzz_harness.h"

namespace oxml {
namespace bench {
namespace {

void BM_FuzzGenerateCase(benchmark::State& state) {
  const size_t ops = static_cast<size_t>(SmokeCapped(state.range(0), 20));
  uint64_t seed = 1;
  for (auto _ : state) {
    fuzz::FuzzCase c = fuzz::GenerateCase(seed++, ops);
    benchmark::DoNotOptimize(c.ops.data());
  }
  state.SetItemsProcessed(state.iterations() * ops);
  state.SetLabel("generate");
}

void BM_FuzzReplayCase(benchmark::State& state) {
  const size_t ops = static_cast<size_t>(SmokeCapped(state.range(0), 20));
  fuzz::FuzzCase c = fuzz::GenerateCase(7, ops);
  for (auto _ : state) {
    fuzz::FuzzCase copy = c;
    auto failure = fuzz::RunCase(&copy);
    OXML_BENCH_CHECK(!failure.has_value());
  }
  // Each executed op runs against the oracle plus three stores.
  state.SetItemsProcessed(state.iterations() * ops);
  state.SetLabel("oracle+3 encodings");
}

void BM_FuzzReproRoundTrip(benchmark::State& state) {
  fuzz::FuzzCase c =
      fuzz::GenerateCase(11, static_cast<size_t>(SmokeScaled(200, 20)));
  for (auto _ : state) {
    std::string text = fuzz::SerializeCase(c);
    auto parsed = fuzz::ParseCase(text);
    OXML_BENCH_CHECK(parsed.ok());
    benchmark::DoNotOptimize(parsed->ops.data());
  }
  state.SetItemsProcessed(state.iterations() * c.ops.size());
  state.SetLabel("serialize+parse");
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_FuzzGenerateCase)
    ->Arg(50)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(oxml::bench::BM_FuzzReplayCase)
    ->Arg(25)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(oxml::bench::BM_FuzzReproRoundTrip)->Unit(benchmark::kMicrosecond);

OXML_BENCH_MAIN();
