// Experiment E13 — structural join vs nested-loop containment join
// (the interval-merge operator mid-2000s engines grew for exactly this
// query shape; see docs/INTERNALS.md "Order-aware execution").
//
// Builds a deeply nested document (sections holding <div> chains D levels
// deep, paragraphs hanging off every level) and runs the descendant query
// //div//para as one translated SQL statement. The same SQL is executed
// with the structural-join lowering enabled (stack-based interval merge,
// O(|A|+|D|)) and disabled (nested-loop join with a containment filter,
// O(|A|*|D|)). Expected shape: the gap widens with depth because deeper
// nesting multiplies both the ancestor count and the pair count; at
// depth >= 6 the structural join should win by well over 5x on Global.
// Local is omitted: descendant steps do not translate to one SQL there.

#include <benchmark/benchmark.h>

#include <string>
#include <tuple>

#include "src/core/sql_translator.h"

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

int Sections() { return static_cast<int>(SmokeScaled(20, 4)); }
constexpr int kParasPerLevel = 3;

std::unique_ptr<XmlDocument> DeepNestedDoc(int sections, int depth) {
  auto doc = std::make_unique<XmlDocument>();
  XmlNode* root = doc->root()->AppendChild(XmlNode::Element("doc"));
  for (int s = 0; s < sections; ++s) {
    XmlNode* cursor = root->AppendChild(XmlNode::Element("sec"));
    for (int d = 0; d < depth; ++d) {
      cursor = cursor->AppendChild(XmlNode::Element("div"));
      for (int p = 0; p < kParasPerLevel; ++p) {
        XmlNode* para = cursor->AppendChild(XmlNode::Element("para"));
        para->AppendChild(XmlNode::Text(
            "s" + std::to_string(s) + "d" + std::to_string(d) + "p" +
            std::to_string(p)));
      }
    }
  }
  return doc;
}

StoreFixture& FixtureFor(OrderEncoding enc, int depth, bool structural) {
  static auto* fixtures =
      new std::map<std::tuple<OrderEncoding, int, bool>, StoreFixture>();
  auto key = std::make_tuple(enc, depth, structural);
  auto it = fixtures->find(key);
  if (it == fixtures->end()) {
    // Only the structural-join lowering differs between the variants, so
    // the comparison isolates the physical join (merge join and sort
    // elision stay at their defaults in both).
    DatabaseOptions opts;
    opts.enable_structural_join = structural;
    StoreFixture f;
    auto dbr = Database::Open(opts);
    OXML_BENCH_CHECK(dbr.ok());
    f.db = std::move(dbr).value();
    auto sr = OrderedXmlStore::Create(f.db.get(), enc, StoreOptions{});
    OXML_BENCH_CHECK(sr.ok());
    f.store = std::move(sr).value();
    auto doc = DeepNestedDoc(Sections(), depth);
    OXML_BENCH_CHECK(f.store->LoadDocument(*doc).ok());
    it = fixtures->emplace(std::move(key), std::move(f)).first;
  }
  return it->second;
}

constexpr char kQuery[] = "//div//para";

void BM_DescendantQuery(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  int depth = static_cast<int>(state.range(1));
  bool structural = state.range(2) != 0;
  StoreFixture& f = FixtureFor(enc, depth, structural);

  size_t results = 0;
  for (auto _ : state) {
    auto r = EvaluateXPathViaSql(f.store.get(), kQuery);
    OXML_BENCH_OK(r);
    results = r->size();
    benchmark::DoNotOptimize(results);
  }
  // Every para sits under at least one div, so the distinct result set is
  // all paras regardless of join strategy.
  OXML_BENCH_CHECK(results ==
                   static_cast<size_t>(Sections() * depth * kParasPerLevel));
  // The slow variant must really have run nested loops, and the fast one
  // structural merges — otherwise the A/B is measuring the same plan.
  if (structural) {
    OXML_BENCH_CHECK(f.db->stats()->joins_structural > 0);
  } else {
    OXML_BENCH_CHECK(f.db->stats()->joins_structural == 0);
    OXML_BENCH_CHECK(f.db->stats()->joins_nested_loop > 0);
  }
  state.counters["results"] = static_cast<double>(results);
  ReportExecStats(state, f.db.get());
  state.SetLabel(std::string(OrderEncodingToString(enc)) + "/depth=" +
                 std::to_string(depth) +
                 (structural ? "/structural" : "/nested_loop"));
}

// One-time differential check: both variants must return the identical
// ordered node sequence (the bench would otherwise compare wrong answers).
void BM_ResultEquivalence(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  int depth = static_cast<int>(state.range(1));
  StoreFixture& fast = FixtureFor(enc, depth, /*structural=*/true);
  StoreFixture& slow = FixtureFor(enc, depth, /*structural=*/false);
  for (auto _ : state) {
    auto a = EvaluateXPathViaSql(fast.store.get(), kQuery);
    auto b = EvaluateXPathViaSql(slow.store.get(), kQuery);
    OXML_BENCH_OK(a);
    OXML_BENCH_OK(b);
    OXML_BENCH_CHECK(a->size() == b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      OXML_BENCH_CHECK(NodeIdentity(enc, (*a)[i]) ==
                       NodeIdentity(enc, (*b)[i]));
    }
  }
  state.SetLabel(std::string(OrderEncodingToString(enc)) + "/depth=" +
                 std::to_string(depth) + "/equivalence");
}

}  // namespace
}  // namespace bench
}  // namespace oxml

// Global (0) and Dewey (2) only: Local cannot translate descendant steps
// into a single SQL statement.
BENCHMARK(oxml::bench::BM_DescendantQuery)
    ->ArgsProduct({{0, 2}, {4, 6, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(oxml::bench::BM_ResultEquivalence)
    ->ArgsProduct({{0, 2}, {6}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

OXML_BENCH_MAIN();
