// Experiment E8 — full document reconstruction (paper: publishing the
// stored document back as XML).
//
// Expected shape: Global and Dewey reconstruct with a single ordered scan
// (one index-ordered pass + a depth stack); Local must group rows by parent
// and reassemble via parent-child joins.

#include <benchmark/benchmark.h>

#include "src/xml/xml_writer.h"

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

const XmlDocument& DocOfSize(int64_t nodes) {
  static auto* cache =
      new std::map<int64_t, std::unique_ptr<XmlDocument>>();
  auto it = cache->find(nodes);
  if (it == cache->end()) {
    XmlGeneratorOptions opts;
    opts.target_nodes = static_cast<size_t>(nodes);
    opts.seed = 42;
    it = cache->emplace(nodes, GenerateXml(opts)).first;
  }
  return *it->second;
}

void BM_Reconstruct(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  const XmlDocument& doc = DocOfSize(SmokeCapped(state.range(1), 2000));
  StoreFixture f = MakeLoadedStore(enc, doc);

  for (auto _ : state) {
    auto rebuilt = f.store->ReconstructDocument();
    OXML_BENCH_OK(rebuilt);
    benchmark::DoNotOptimize(*rebuilt);
  }
  // Verify fidelity once (outside timing).
  auto rebuilt = f.store->ReconstructDocument();
  OXML_BENCH_OK(rebuilt);
  OXML_BENCH_CHECK((*rebuilt)->StructurallyEqual(doc));
  ReportExecStats(state, f.db.get());
  state.SetLabel(OrderEncodingToString(enc));
}

void BM_SerializeToText(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  const XmlDocument& doc = DocOfSize(SmokeScaled(10000, 2000));
  StoreFixture f = MakeLoadedStore(enc, doc);

  size_t bytes = 0;
  for (auto _ : state) {
    auto rebuilt = f.store->ReconstructDocument();
    OXML_BENCH_OK(rebuilt);
    std::string xml = WriteXml(**rebuilt);
    bytes = xml.size();
    benchmark::DoNotOptimize(xml);
  }
  state.counters["xml_KB"] = static_cast<double>(bytes) / 1024.0;
  ReportExecStats(state, f.db.get());
  state.SetLabel(OrderEncodingToString(enc));
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_Reconstruct)
    ->ArgsProduct({{0, 1, 2}, {2000, 10000, 30000}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(oxml::bench::BM_SerializeToText)
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

OXML_BENCH_MAIN();
