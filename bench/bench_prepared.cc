// Experiment E8 — statement-compilation overhead on the ordered-XML hot
// paths. Measures the same point query executed (a) ad-hoc with literal
// predicates (fresh SQL text per probe, so the plan cache never hits),
// (b) through one prepared statement with rebound parameters, and the same
// row load executed (c) row-at-a-time ad-hoc vs (d) as a prepared batch.
//
// Expected shape: prepared execution amortizes the lexer/parser/planner to
// one compilation per statement shape, so repeated point probes should run
// at a small multiple of raw index-scan cost; the ad-hoc variant pays
// parse + plan on every probe.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

StoreFixture& FixtureFor(OrderEncoding enc) {
  static auto* fixtures = new std::map<OrderEncoding, StoreFixture>();
  auto it = fixtures->find(enc);
  if (it == fixtures->end()) {
    auto doc = NewsDoc(static_cast<int>(SmokeScaled(100, 30)),
                       static_cast<int>(SmokeScaled(10, 5)));
    it = fixtures->emplace(enc, MakeLoadedStore(enc, *doc)).first;
  }
  return it->second;
}

/// Point-probe predicates per encoding: an equality on the order-key
/// column, the shape every axis step and key lookup issues. Keys are real
/// order keys read back from the loaded store (integers for Global/Local,
/// Dewey path blobs for Dewey), cycled so the literal variant generates
/// far more distinct SQL texts than the 128-entry plan cache holds.
struct Probe {
  std::string column;
  std::vector<Value> binds;     // values for the prepared variant
  std::vector<std::string> lits;  // rendered literals for the ad-hoc variant
};

Probe& ProbeFor(StoreFixture& f) {
  static auto* probes = new std::map<OrderEncoding, Probe>();
  auto it = probes->find(f.store->encoding());
  if (it != probes->end()) return it->second;

  Probe p;
  switch (f.store->encoding()) {
    case OrderEncoding::kGlobal:
      p.column = "ord";
      break;
    case OrderEncoding::kLocal:
      p.column = "id";
      break;
    case OrderEncoding::kDewey:
      p.column = "path";
      break;
  }
  auto rs = f.db->Query("SELECT " + p.column + " FROM " +
                        f.store->table_name());
  OXML_BENCH_OK(rs);
  for (const Row& row : rs->rows) {
    const Value& v = row[0];
    if (v.type() == TypeId::kBlob) {
      p.lits.push_back(BlobLit(v.AsString()));
    } else {
      p.lits.push_back(std::to_string(v.AsInt()));
    }
    p.binds.push_back(v);
  }
  OXML_BENCH_CHECK(p.binds.size() >
                   static_cast<size_t>(SmokeScaled(1000, 100)));
  return probes->emplace(f.store->encoding(), std::move(p)).first->second;
}

void BM_PointQueryAdHoc(benchmark::State& state) {
  StoreFixture& f = FixtureFor(EncodingFromIndex(state.range(0)));
  Probe& p = ProbeFor(f);
  size_t key = 0;
  size_t hits = 0;
  for (auto _ : state) {
    // Literal predicate: a distinct SQL text per key, every probe pays a
    // fresh parse + plan.
    auto rs = f.db->Query("SELECT kind FROM " + f.store->table_name() +
                          " WHERE " + p.column + " = " + p.lits[key]);
    OXML_BENCH_OK(rs);
    hits += rs->rows.size();
    benchmark::DoNotOptimize(rs->rows);
    key = (key + 1) % p.lits.size();
  }
  OXML_BENCH_CHECK(hits >= state.iterations());
  ReportExecStats(state, f.db.get());
  state.SetLabel(std::string(OrderEncodingToString(f.store->encoding())) +
                 "/adhoc");
}

void BM_PointQueryPrepared(benchmark::State& state) {
  StoreFixture& f = FixtureFor(EncodingFromIndex(state.range(0)));
  Probe& p = ProbeFor(f);
  auto ps = f.db->Prepare("SELECT kind FROM " + f.store->table_name() +
                          " WHERE " + p.column + " = ?");
  OXML_BENCH_OK(ps);
  size_t key = 0;
  size_t hits = 0;
  for (auto _ : state) {
    OXML_BENCH_CHECK(ps->Bind(0, p.binds[key]).ok());
    auto rs = ps->Query();
    OXML_BENCH_OK(rs);
    hits += rs->rows.size();
    benchmark::DoNotOptimize(rs->rows);
    key = (key + 1) % p.binds.size();
  }
  OXML_BENCH_CHECK(hits >= state.iterations());
  ReportExecStats(state, f.db.get());
  state.SetLabel(std::string(OrderEncodingToString(f.store->encoding())) +
                 "/prepared");
}

int BatchRows() { return static_cast<int>(SmokeScaled(256, 32)); }

void BM_InsertRowAtATimeAdHoc(benchmark::State& state) {
  const int kBatchRows = BatchRows();
  for (auto _ : state) {
    state.PauseTiming();
    auto dbr = Database::Open();
    OXML_BENCH_CHECK(dbr.ok());
    auto db = std::move(dbr).value();
    OXML_BENCH_OK(db->Execute("CREATE TABLE load (id INT, val TEXT)"));
    state.ResumeTiming();
    for (int i = 0; i < kBatchRows; ++i) {
      // Distinct literal text per row: worst-case compilation overhead.
      OXML_BENCH_OK(db->Execute("INSERT INTO load VALUES (" +
                                std::to_string(i) + ", 'row" +
                                std::to_string(i) + "')"));
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
  state.SetLabel("adhoc");
}

void BM_InsertPreparedBatch(benchmark::State& state) {
  const int kBatchRows = BatchRows();
  std::vector<Row> rows;
  rows.reserve(kBatchRows);
  for (int i = 0; i < kBatchRows; ++i) {
    rows.push_back(
        Row{Value::Int(i), Value::Text("row" + std::to_string(i))});
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto dbr = Database::Open();
    OXML_BENCH_CHECK(dbr.ok());
    auto db = std::move(dbr).value();
    OXML_BENCH_OK(db->Execute("CREATE TABLE load (id INT, val TEXT)"));
    state.ResumeTiming();
    auto ps = db->Prepare("INSERT INTO load VALUES (?, ?)");
    OXML_BENCH_OK(ps);
    auto n = ps->ExecuteBatch(rows);
    OXML_BENCH_OK(n);
    OXML_BENCH_CHECK(*n == kBatchRows);
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows);
  state.SetLabel("prepared_batch");
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_PointQueryAdHoc)
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(oxml::bench::BM_PointQueryPrepared)
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(oxml::bench::BM_InsertRowAtATimeAdHoc)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(oxml::bench::BM_InsertPreparedBatch)
    ->Unit(benchmark::kMillisecond);

OXML_BENCH_MAIN();
