// Experiment E6 — mixed query/update workload (paper: the crossover figure
// locating each encoding's sweet spot).
//
// Runs a fixed operation mix, varying the update fraction from 0% to 100%.
// Expected shape: Global wins (or ties Dewey) at 0% updates, Local wins at
// 100% updates, and Dewey tracks the best of both across the middle — the
// paper's headline argument for Dewey order.

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/xml/xml_parser.h"

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

const char* const kQueryMix[] = {
    "//para[@class = 'lead']",
    "/nitf/body/section[7]/para[3]",
    "//section[@id = 's40']/following-sibling::section[1]",
    "/nitf/body/section[last()]/para[last()]",
};

void BM_MixedWorkload(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  int update_pct = static_cast<int>(state.range(1));
  // Smoke keeps >= 45 sections so the s40 sibling query still matches.
  const int kSections = static_cast<int>(SmokeScaled(100, 45));
  const int kParagraphs = static_cast<int>(SmokeScaled(15, 5));
  const int kOpsPerIteration = static_cast<int>(SmokeScaled(60, 10));

  auto doc = NewsDoc(kSections, kParagraphs);
  auto para = ParseXml("<para>mixed workload paragraph</para>");
  OXML_BENCH_OK(para);
  const XmlNode& subtree = *(*para)->root_element();

  int64_t ops = 0;
  ExecStats exec;
  for (auto _ : state) {
    state.PauseTiming();
    StoreFixture f = MakeLoadedStore(enc, *doc, /*gap=*/8);
    auto body = EvaluateXPath(f.store.get(), "/nitf/body");
    OXML_BENCH_OK(body);
    Random rng(23);
    state.ResumeTiming();

    for (int op = 0; op < kOpsPerIteration; ++op) {
      bool is_update = rng.Uniform(1, 100) <= update_pct;
      if (is_update) {
        auto section = f.store->ChildAt(
            (*body)[0], NodeTest::Tag("section"),
            static_cast<size_t>(rng.Uniform(0, kSections - 1)));
        OXML_BENCH_OK(section);
        auto target = f.store->ChildAt(
            *section, NodeTest::Tag("para"),
            static_cast<size_t>(rng.Uniform(0, kParagraphs - 1)));
        OXML_BENCH_OK(target);
        OXML_BENCH_OK(f.store->InsertSubtree(*target,
                                             InsertPosition::kBefore,
                                             subtree));
      } else {
        const char* q = kQueryMix[rng.Uniform(0, 3)];
        auto r = EvaluateXPath(f.store.get(), q);
        OXML_BENCH_OK(r);
        benchmark::DoNotOptimize(r->size());
      }
      ++ops;
    }
    exec = *f.db->stats();
  }
  state.counters["ops_per_s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
  ReportExecStats(state, exec);
  state.SetLabel(std::string(OrderEncodingToString(enc)) + "/updates=" +
                 std::to_string(update_pct) + "%");
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_MixedWorkload)
    ->ArgsProduct({{0, 1, 2}, {0, 25, 50, 75, 100}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

OXML_BENCH_MAIN();
