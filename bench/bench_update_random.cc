// Experiment E3 — random-position single-node inserts (paper: update
// performance under uniformly random inserts).
//
// Inserts one <para> at a uniformly random (section, position) and reports
// time plus rows renumbered. Expected shape: Global renumbers roughly half
// the *document* when a gap fills; Dewey renumbers the following siblings'
// subtrees; Local renumbers at most the siblings.

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/xml/xml_parser.h"

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

void BM_RandomInsert(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  int sections = static_cast<int>(SmokeCapped(state.range(1), 50));
  const int kParagraphs = static_cast<int>(SmokeScaled(20, 5));
  const int kOpsPerIteration = static_cast<int>(SmokeScaled(100, 20));

  auto doc = NewsDoc(sections, kParagraphs);
  auto para = ParseXml("<para>freshly inserted paragraph text</para>");
  OXML_BENCH_OK(para);
  const XmlNode& subtree = *(*para)->root_element();

  int64_t renumbered = 0;
  int64_t renumber_events = 0;
  int64_t ops = 0;
  ExecStats exec;
  for (auto _ : state) {
    state.PauseTiming();
    StoreFixture f = MakeLoadedStore(enc, *doc, /*gap=*/8);
    auto body = EvaluateXPath(f.store.get(), "/nitf/body");
    OXML_BENCH_OK(body);
    Random rng(7);
    state.ResumeTiming();

    for (int op = 0; op < kOpsPerIteration; ++op) {
      auto section = f.store->ChildAt(
          (*body)[0], NodeTest::Tag("section"),
          static_cast<size_t>(rng.Uniform(0, sections - 1)));
      OXML_BENCH_OK(section);
      auto target = f.store->ChildAt(
          *section, NodeTest::Tag("para"),
          static_cast<size_t>(rng.Uniform(0, kParagraphs - 1)));
      OXML_BENCH_OK(target);
      auto stats =
          f.store->InsertSubtree(*target, InsertPosition::kBefore, subtree);
      OXML_BENCH_OK(stats);
      renumbered += stats->rows_renumbered;
      renumber_events += stats->renumbering_triggered ? 1 : 0;
      ++ops;
    }
    exec = *f.db->stats();
  }
  state.counters["rows_renumbered_per_op"] =
      static_cast<double>(renumbered) / static_cast<double>(ops);
  state.counters["renumber_event_pct"] =
      100.0 * static_cast<double>(renumber_events) /
      static_cast<double>(ops);
  ReportExecStats(state, exec);
  state.SetLabel(OrderEncodingToString(enc));
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_RandomInsert)
    ->ArgsProduct({{0, 1, 2}, {50, 150, 400}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

OXML_BENCH_MAIN();
