// Experiment 15: the price of durability. Measures (a) commit throughput of
// small write transactions under the WAL sync policies — fsync per commit,
// group commit, write-without-sync, and no WAL at all; (b) the same sweep on
// an ordered-store subtree insert, the paper's update workload; and (c)
// recovery time as a function of WAL length. Feeds EXPERIMENTS.md E15.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "src/relational/wal.h"
#include "src/xml/xml_parser.h"

namespace oxml {
namespace bench {
namespace {

std::string BenchPath(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  return std::string(base != nullptr ? base : "/tmp") + "/oxml_bench_dur_" +
         std::to_string(static_cast<long long>(::getpid())) + "_" + name +
         ".db";
}

void RemoveDb(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

// Sync-policy axis shared by the commit benchmarks.
constexpr int64_t kPolicyCount = 5;

DatabaseOptions PolicyOptions(int64_t policy, const std::string& path) {
  DatabaseOptions o;
  o.file_path = path;
  switch (policy) {
    case 0:  // fsync on every commit (the default, full durability)
      break;
    case 1:
      o.wal_group_commit_every = 8;
      break;
    case 2:
      o.wal_group_commit_every = 64;
      break;
    case 3:  // write the log, let the OS decide when it hits disk
      o.wal_sync_on_commit = false;
      break;
    default:  // no WAL: page writes only at checkpoint/eviction
      o.enable_wal = false;
      break;
  }
  return o;
}

const char* PolicyName(int64_t policy) {
  switch (policy) {
    case 0:
      return "fsync_each";
    case 1:
      return "group_8";
    case 2:
      return "group_64";
    case 3:
      return "nosync";
    default:
      return "no_wal";
  }
}

void ReportWal(benchmark::State& state, Database* db) {
  if (db->wal() != nullptr) {
    state.counters["wal_syncs"] =
        static_cast<double>(db->wal()->syncs());
    state.counters["wal_mb"] =
        static_cast<double>(db->wal()->bytes_appended()) / (1024.0 * 1024.0);
  }
  state.SetLabel(PolicyName(state.range(0)));
}

// (a) One single-row INSERT per transaction: the commit path laid bare.
void BM_CommitSingleRow(benchmark::State& state) {
  std::string path = BenchPath("commit");
  RemoveDb(path);
  auto dbr = Database::Open(PolicyOptions(state.range(0), path));
  OXML_BENCH_CHECK(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  OXML_BENCH_OK(db->Execute("CREATE TABLE t (id INT, body TEXT)"));
  auto ps = db->Prepare("INSERT INTO t VALUES (?, ?)");
  OXML_BENCH_OK(ps);
  int64_t id = 0;
  for (auto _ : state) {
    OXML_BENCH_CHECK(ps->BindAll(
        {Value::Int(id++), Value::Text("forty bytes of payload for the row")}).ok());
    OXML_BENCH_OK(ps->Execute());
  }
  state.SetItemsProcessed(state.iterations());
  ReportWal(state, db.get());
  OXML_BENCH_CHECK(db->Close().ok());
  db.reset();
  RemoveDb(path);
}

// (b) The paper's update workload under durability: one subtree insert (a
// multi-statement renumbering transaction) per commit, Dewey encoding.
void BM_CommitSubtreeInsert(benchmark::State& state) {
  std::string path = BenchPath("subtree");
  RemoveDb(path);
  auto dbr = Database::Open(PolicyOptions(state.range(0), path));
  OXML_BENCH_CHECK(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  StoreOptions sopts;
  sopts.gap = 8;
  auto sr = OrderedXmlStore::Create(db.get(), OrderEncoding::kDewey, sopts);
  OXML_BENCH_CHECK(sr.ok());
  std::unique_ptr<OrderedXmlStore> store = std::move(sr).value();
  auto doc = NewsDoc(static_cast<int>(SmokeScaled(20, 4)), 5);
  OXML_BENCH_CHECK(store->LoadDocument(*doc).ok());
  auto frag = ParseXml("<section id=\"bench\"><para>inserted text</para>"
                       "</section>");
  OXML_BENCH_CHECK(frag.ok());
  const XmlNode* payload = (*frag)->root_element();
  for (auto _ : state) {
    auto sections = EvaluateXPath(store.get(), "/nitf/body/section");
    OXML_BENCH_CHECK(sections.ok() && !sections->empty());
    auto stats = store->InsertSubtree(
        (*sections)[sections->size() / 2], InsertPosition::kBefore, *payload);
    OXML_BENCH_CHECK(stats.ok());
  }
  state.SetItemsProcessed(state.iterations());
  ReportWal(state, db.get());
  OXML_BENCH_CHECK(db->Close().ok());
  store.reset();
  db.reset();
  RemoveDb(path);
}

// (c) Recovery: reopen a database that crashed with N committed
// transactions in its WAL and no checkpoint since.
void BM_Recovery(benchmark::State& state) {
  int64_t commits = SmokeCapped(state.range(0), 64);
  std::string path = BenchPath("recover");
  std::string gold = path + ".gold";
  std::string gold_wal = path + ".wal.gold";
  RemoveDb(path);
  {
    DatabaseOptions o;
    o.file_path = path;
    o.wal_checkpoint_threshold_bytes = 0;  // let the log grow
    auto dbr = Database::Open(o);
    OXML_BENCH_CHECK(dbr.ok());
    std::unique_ptr<Database> db = std::move(dbr).value();
    OXML_BENCH_OK(db->Execute("CREATE TABLE t (id INT, body TEXT)"));
    auto ps = db->Prepare("INSERT INTO t VALUES (?, ?)");
    OXML_BENCH_OK(ps);
    for (int64_t i = 0; i < commits; ++i) {
      OXML_BENCH_CHECK(ps->BindAll(
          {Value::Int(i), Value::Text("row payload to be replayed")}).ok());
      OXML_BENCH_OK(ps->Execute());
    }
    state.counters["wal_mb"] =
        static_cast<double>(db->wal()->size_bytes()) / (1024.0 * 1024.0);
    db->SimulateCrashForTesting();
  }
  std::filesystem::copy_file(path, gold,
                             std::filesystem::copy_options::overwrite_existing);
  std::filesystem::copy_file(path + ".wal", gold_wal,
                             std::filesystem::copy_options::overwrite_existing);

  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::copy_file(
        gold, path, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::copy_file(
        gold_wal, path + ".wal",
        std::filesystem::copy_options::overwrite_existing);
    state.ResumeTiming();

    DatabaseOptions o;
    o.file_path = path;
    o.open_existing = true;
    auto dbr = Database::Open(o);  // replays + truncates the log
    OXML_BENCH_CHECK(dbr.ok());

    state.PauseTiming();
    (*dbr)->SimulateCrashForTesting();  // skip the checkpoint on destroy
    dbr->reset();
    state.ResumeTiming();
  }
  state.counters["commits_replayed"] = static_cast<double>(commits);
  RemoveDb(path);
  std::remove(gold.c_str());
  std::remove(gold_wal.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_CommitSingleRow)->DenseRange(0, oxml::bench::kPolicyCount - 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(oxml::bench::BM_CommitSubtreeInsert)->DenseRange(0, oxml::bench::kPolicyCount - 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(oxml::bench::BM_Recovery)->Arg(64)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

OXML_BENCH_MAIN()
