// Experiment E4 — append workload (paper: the news-feed pattern, new
// content is always added at the document tail).
//
// Expected shape: appends almost never renumber under any encoding (the
// tail always has free ordinals), so all three are cheap; Global pays a
// small extra cost to extend ancestor intervals.

#include <benchmark/benchmark.h>

#include "src/xml/xml_parser.h"

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

void BM_Append(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  const int kOpsPerIteration = static_cast<int>(SmokeScaled(200, 20));

  auto doc = NewsDoc(static_cast<int>(SmokeScaled(50, 10)),
                     static_cast<int>(SmokeScaled(20, 5)));
  auto para = ParseXml("<para>breaking news paragraph</para>");
  OXML_BENCH_OK(para);
  const XmlNode& subtree = *(*para)->root_element();

  int64_t renumbered = 0;
  int64_t ops = 0;
  ExecStats exec;
  for (auto _ : state) {
    state.PauseTiming();
    StoreFixture f = MakeLoadedStore(enc, *doc, /*gap=*/8);
    auto body = EvaluateXPath(f.store.get(), "/nitf/body");
    OXML_BENCH_OK(body);
    state.ResumeTiming();

    for (int op = 0; op < kOpsPerIteration; ++op) {
      // Re-fetch the target: StoredNode handles are snapshots and appends
      // extend the parent's interval under the Global encoding.
      auto sections = f.store->Children((*body)[0], NodeTest::Tag("section"));
      OXML_BENCH_OK(sections);
      auto stats = f.store->InsertSubtree(
          sections->back(), InsertPosition::kLastChild, subtree);
      OXML_BENCH_OK(stats);
      renumbered += stats->rows_renumbered;
      ++ops;
    }
    exec = *f.db->stats();
  }
  state.counters["rows_renumbered_per_op"] =
      static_cast<double>(renumbered) / static_cast<double>(ops);
  ReportExecStats(state, exec);
  state.SetLabel(OrderEncodingToString(enc));
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_Append)
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

OXML_BENCH_MAIN();
