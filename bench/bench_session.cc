// Experiment E20 — session & wire-protocol overhead. The QR-style query
// workload from the embedded benchmarks, re-run through the OXWP server
// stack (src/server/): loopback TCP, per-session admission control, the
// worker pool, and result framing. Three questions:
//
//  * wire=0 vs wire=1: what the protocol costs per statement — the same
//    XPath evaluated embedded (direct EvaluateXPath under the shared
//    latch) and over a loopback connection (frame encode → poll loop →
//    admission → worker → row batches back).
//  * threads 1..8: how concurrent sessions scale when the server has
//    enough admission slots — every thread owns one connection/session,
//    so this measures the poll-loop + worker-pool path under fan-in.
//  * BM_AdmissionThrash: more clients than slots on purpose (2 running /
//    1 queued, 8 clients). Rejected statements surface as immediate
//    kResourceExhausted, never a hang; the admitted/rejected/queued_peak
//    counters attached to the report line show the actual split.
//
// Smoke mode shrinks the document; the server topology stays identical.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace oxml {
namespace bench {
namespace {

int Sections() { return static_cast<int>(SmokeScaled(40, 8)); }
int Paragraphs() { return static_cast<int>(SmokeScaled(8, 4)); }

/// One loaded store plus a running loopback server exposing it as "doc".
struct ServerFixture {
  StoreFixture f;
  std::unique_ptr<server::OxmlServer> srv;
};

ServerFixture MakeServerFixture(OrderEncoding enc,
                                const server::ServerOptions& sopts) {
  ServerFixture sf;
  sf.f = MakeLoadedStore(enc, *NewsDoc(Sections(), Paragraphs()));
  sf.srv = std::make_unique<server::OxmlServer>(sf.f.db.get(), sopts);
  OXML_BENCH_CHECK(sf.srv->Start().ok());
  sf.srv->RegisterStore("doc", sf.f.store.get());
  return sf;
}

/// Fixtures shared across benchmark threads, one per (encoding, key).
ServerFixture& SharedServer(OrderEncoding enc, int key,
                            const server::ServerOptions& sopts) {
  static auto* fixtures = new std::map<int, ServerFixture>();
  int k = (static_cast<int>(enc) << 4) | key;
  auto it = fixtures->find(k);
  if (it == fixtures->end()) {
    it = fixtures->emplace(k, MakeServerFixture(enc, sopts)).first;
  }
  return it->second;
}

std::unique_ptr<server::OxmlClient> ConnectTo(const ServerFixture& sf) {
  server::ClientOptions copts;
  copts.port = sf.srv->port();
  auto cl = server::OxmlClient::Connect(copts);
  OXML_BENCH_CHECK(cl.ok());
  return std::move(cl).value();
}

const char* kXPath = "//para";

// Embedded-vs-wire on the same store: every iteration evaluates one XPath
// scan. Each wire thread owns its own connection (= server session); the
// embedded side calls straight into the evaluator. items_processed is the
// aggregate statement count, so the report gives statements/second on both
// sides of the protocol boundary.
void BM_SessionQuery(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  bool wire = state.range(1) != 0;
  server::ServerOptions sopts;
  sopts.worker_threads = 8;
  sopts.session.max_concurrent_statements = 16;
  ServerFixture& sf = SharedServer(enc, /*key=*/0, sopts);

  std::unique_ptr<server::OxmlClient> cl;
  if (wire) cl = ConnectTo(sf);  // per-thread session, opened untimed

  int64_t statements = 0;
  for (auto _ : state) {
    if (wire) {
      auto r = cl->XPath("doc", kXPath);
      OXML_BENCH_OK(r);
      benchmark::DoNotOptimize(r->size());
    } else {
      auto r = EvaluateXPath(sf.f.store.get(), kXPath);
      OXML_BENCH_OK(r);
      benchmark::DoNotOptimize(r->size());
    }
    ++statements;
  }
  state.SetItemsProcessed(statements);

  if (state.thread_index() == 0) {
    ReportExecStats(state, sf.f.db.get());
    state.SetLabel(std::string(OrderEncodingToString(enc)) +
                   (wire ? "/wire" : "/embedded") + "/sessions_x" +
                   std::to_string(state.threads()));
  }
}

// Prepared statements over the wire: the kPrepare/kQueryPrepared path
// (parse + plan once per session, bind-free re-execution) against one-shot
// kQuery frames carrying the same SQL. The gap is what per-statement parse
// and planning cost on the wire path.
void BM_SessionPrepared(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  bool prepared = state.range(1) != 0;
  server::ServerOptions sopts;
  sopts.worker_threads = 8;
  sopts.session.max_concurrent_statements = 16;
  ServerFixture& sf = SharedServer(enc, /*key=*/1, sopts);

  auto cl = ConnectTo(sf);
  const std::string sql =
      "SELECT COUNT(*) FROM nodes WHERE tag = 'para'";
  server::ClientPrepared handle;
  if (prepared) {
    auto p = cl->Prepare(sql);
    OXML_BENCH_OK(p);
    handle = *p;
  }

  int64_t statements = 0;
  for (auto _ : state) {
    auto r = prepared ? cl->QueryPrepared(handle.stmt_id) : cl->Query(sql);
    OXML_BENCH_OK(r);
    benchmark::DoNotOptimize(r->rows.size());
    ++statements;
  }
  state.SetItemsProcessed(statements);

  if (state.thread_index() == 0) {
    ReportExecStats(state, sf.f.db.get());
    state.SetLabel(std::string(OrderEncodingToString(enc)) +
                   (prepared ? "/prepared" : "/one_shot") + "/sessions_x" +
                   std::to_string(state.threads()));
  }
}

// Deliberate overload: 8 clients against 2 admission slots + 1 queue
// entry. A rejected statement must come back as an immediate
// kResourceExhausted (the client then just retries on the next
// iteration); anything else — a hang, a different error — aborts the
// bench. The counters show how the load actually split.
void BM_AdmissionThrash(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  server::ServerOptions sopts;
  sopts.worker_threads = 4;
  sopts.session.max_concurrent_statements = 2;
  sopts.session.max_queued_statements = 1;
  ServerFixture& sf = SharedServer(enc, /*key=*/2, sopts);

  auto cl = ConnectTo(sf);

  int64_t ok = 0;
  int64_t rejected = 0;
  for (auto _ : state) {
    auto r = cl->XPath("doc", kXPath);
    if (r.ok()) {
      benchmark::DoNotOptimize(r->size());
      ++ok;
    } else {
      OXML_BENCH_CHECK(r.status().IsResourceExhausted());
      ++rejected;
    }
  }
  state.SetItemsProcessed(ok);

  if (state.thread_index() == 0) {
    const server::AdmissionStats& a =
        sf.srv->session_manager()->admission_stats();
    state.counters["admitted"] = static_cast<double>(a.admitted.load());
    state.counters["rejected"] = static_cast<double>(a.rejected.load());
    state.counters["queued_peak"] =
        static_cast<double>(a.queued_peak.load());
    state.SetLabel(std::string(OrderEncodingToString(enc)) +
                   "/slots_2+1/clients_x" +
                   std::to_string(state.threads()));
  }
}

}  // namespace
}  // namespace bench
}  // namespace oxml

// Embedded baseline vs wire path, 1 and 4 concurrent sessions.
BENCHMARK(oxml::bench::BM_SessionQuery)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// One-shot vs prepared statements over the wire (Global encoding carries
// the point; the statement is pure SQL, so encodings only change the data).
BENCHMARK(oxml::bench::BM_SessionPrepared)
    ->ArgsProduct({{0}, {0, 1}})
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Overload behaviour: 8 clients, 2 slots, 1 queue entry.
BENCHMARK(oxml::bench::BM_AdmissionThrash)
    ->Args({0})
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

OXML_BENCH_MAIN();
