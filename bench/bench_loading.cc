// Experiment E1 — dataset + storage profile (paper: dataset/loading table).
//
// Shreds synthetic documents of increasing size under each order encoding
// and reports load time plus the resulting storage footprint: node rows,
// heap pages/bytes, and index entries/bytes. The Dewey encoding pays for
// its variable-length keys in index bytes; Global pays one extra integer
// column (eord); Local is the leanest per row but needs more indexes to
// navigate.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

const XmlDocument& DocOfSize(int64_t nodes) {
  static auto* cache =
      new std::map<int64_t, std::unique_ptr<XmlDocument>>();
  auto it = cache->find(nodes);
  if (it == cache->end()) {
    XmlGeneratorOptions opts;
    opts.target_nodes = static_cast<size_t>(nodes);
    opts.seed = 42;
    it = cache->emplace(nodes, GenerateXml(opts)).first;
  }
  return *it->second;
}

void BM_Load(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  const XmlDocument& doc = DocOfSize(SmokeCapped(state.range(1), 2000));

  StorageStats last{};
  ExecStats exec;
  for (auto _ : state) {
    StoreFixture f = MakeLoadedStore(enc, doc);
    last = f.db->GetStorageStats();
    exec = *f.db->stats();
    benchmark::DoNotOptimize(last.heap_rows);
  }
  state.counters["rows"] = static_cast<double>(last.heap_rows);
  state.counters["heap_pages"] = static_cast<double>(last.heap_pages);
  state.counters["heap_KB"] = static_cast<double>(last.heap_bytes) / 1024.0;
  state.counters["index_entries"] =
      static_cast<double>(last.index_entries);
  state.counters["index_KB"] = static_cast<double>(last.index_bytes) / 1024.0;
  ReportExecStats(state, exec);
  state.SetLabel(OrderEncodingToString(enc));
}

// Experiment E17 — parallel bulk-load scaling (see EXPERIMENTS.md).
//
// Loads the same document through the parallel pipeline (partition →
// multi-threaded shred into sorted runs → k-way merge → bulk-built heap
// and indexes) at increasing worker counts. Arg 2 is the load thread
// count; 0 means the serial single-transaction path for a same-binary
// baseline. Counters surface the pipeline's fan-out (load_threads,
// runs_merged, rows_shredded) and the AppendBatch tail-page fetch
// savings, so the scaling story is auditable even on single-core CI
// where wall-clock speedup is not observable.
void BM_LoadParallel(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  const XmlDocument& doc = DocOfSize(SmokeCapped(state.range(1), 2000));
  const int64_t threads = state.range(2);

  DatabaseOptions db_opts;
  db_opts.enable_parallel_load = threads > 0;
  db_opts.num_load_threads = static_cast<size_t>(threads);
  // Small runs keep the k-way merge in play at every dataset size.
  db_opts.load_run_bytes = 256 * 1024;

  ExecStats exec;
  uint64_t saved_fetches = 0;
  uint64_t rows = 0;
  for (auto _ : state) {
    StoreFixture f = MakeStore(enc, db_opts);
    OXML_BENCH_CHECK(f.store->LoadDocument(doc).ok());
    exec = *f.db->stats();
    rows = f.db->GetStorageStats().heap_rows;
    saved_fetches = f.db->buffer_pool()->saved_fetch_count();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows) * state.iterations());
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["load_threads"] =
      static_cast<double>(exec.load_threads_used);
  state.counters["rows_shredded"] = static_cast<double>(exec.rows_shredded);
  state.counters["runs_merged"] = static_cast<double>(exec.runs_merged);
  state.counters["saved_fetches"] = static_cast<double>(saved_fetches);
  state.SetLabel(std::string(OrderEncodingToString(enc)) +
                 (threads > 0 ? "/parallel" : "/serial"));
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_Load)
    ->ArgsProduct({{0, 1, 2}, {2000, 10000, 30000}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK(oxml::bench::BM_LoadParallel)
    ->ArgsProduct({{0, 1, 2}, {30000}, {0, 1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

OXML_BENCH_MAIN();
