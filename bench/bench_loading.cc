// Experiment E1 — dataset + storage profile (paper: dataset/loading table).
//
// Shreds synthetic documents of increasing size under each order encoding
// and reports load time plus the resulting storage footprint: node rows,
// heap pages/bytes, and index entries/bytes. The Dewey encoding pays for
// its variable-length keys in index bytes; Global pays one extra integer
// column (eord); Local is the leanest per row but needs more indexes to
// navigate.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

const XmlDocument& DocOfSize(int64_t nodes) {
  static auto* cache =
      new std::map<int64_t, std::unique_ptr<XmlDocument>>();
  auto it = cache->find(nodes);
  if (it == cache->end()) {
    XmlGeneratorOptions opts;
    opts.target_nodes = static_cast<size_t>(nodes);
    opts.seed = 42;
    it = cache->emplace(nodes, GenerateXml(opts)).first;
  }
  return *it->second;
}

void BM_Load(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  const XmlDocument& doc = DocOfSize(SmokeCapped(state.range(1), 2000));

  StorageStats last{};
  ExecStats exec;
  for (auto _ : state) {
    StoreFixture f = MakeLoadedStore(enc, doc);
    last = f.db->GetStorageStats();
    exec = *f.db->stats();
    benchmark::DoNotOptimize(last.heap_rows);
  }
  state.counters["rows"] = static_cast<double>(last.heap_rows);
  state.counters["heap_pages"] = static_cast<double>(last.heap_pages);
  state.counters["heap_KB"] = static_cast<double>(last.heap_bytes) / 1024.0;
  state.counters["index_entries"] =
      static_cast<double>(last.index_entries);
  state.counters["index_KB"] = static_cast<double>(last.index_bytes) / 1024.0;
  ReportExecStats(state, exec);
  state.SetLabel(OrderEncodingToString(enc));
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_Load)
    ->ArgsProduct({{0, 1, 2}, {2000, 10000, 30000}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

OXML_BENCH_MAIN();
