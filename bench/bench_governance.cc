// Experiment E19 — the price of resource governance (EXPERIMENTS.md §E19).
//
// Two questions: (1) what do the cooperative cancellation/deadline checks
// cost on the ordered-query workload when no limit ever trips — the paper's
// QR queries run identically, so the governed/ungoverned pair isolates the
// per-row check overhead (target: < 2%); (2) what latency does the bounded
// transient-I/O retry loop add as the injected failure burst grows — the
// "retry ladder" makes the exponential backoff schedule visible.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <utility>

#include "bench/bench_util.h"
#include "src/relational/fault_injection.h"

namespace oxml {
namespace bench {
namespace {

int Sections() { return static_cast<int>(SmokeScaled(150, 60)); }
int Paragraphs() { return static_cast<int>(SmokeScaled(20, 4)); }

// The QR queries whose operators poll the control token hardest: full tag
// scan, ordered descendant scan, value filter, and a sibling range.
const char* kQrQueries[] = {
    "//para",
    "/nitf/body//para",
    "//para[@class = 'lead']",
    "//section[@id = 's10']/following-sibling::section",
};

StoreFixture& FixtureFor(OrderEncoding enc, bool governed) {
  static auto* fixtures =
      new std::map<std::pair<OrderEncoding, bool>, StoreFixture>();
  auto key = std::make_pair(enc, governed);
  auto it = fixtures->find(key);
  if (it == fixtures->end()) {
    DatabaseOptions opts;
    if (governed) {
      // Generous limits that never trip: every statement runs with a live
      // deadline and budget, so each operator row pays the real check.
      opts.default_statement_timeout_ms = 600'000;
      opts.statement_memory_budget_bytes = 4ull << 30;
      opts.total_memory_budget_bytes = 8ull << 30;
    }
    auto doc = NewsDoc(Sections(), Paragraphs());
    StoreFixture f = MakeStore(enc, opts);
    OXML_BENCH_CHECK(f.store->LoadDocument(*doc).ok());
    it = fixtures->emplace(key, std::move(f)).first;
  }
  return it->second;
}

// Args: {encoding, governed}. Compare governed=1 against governed=0 per
// encoding: the ratio is the cancellation-check overhead on QR.
void BM_QrWorkload(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  bool governed = state.range(1) != 0;
  StoreFixture& f = FixtureFor(enc, governed);

  size_t results = 0;
  for (auto _ : state) {
    for (const char* q : kQrQueries) {
      auto r = EvaluateXPath(f.store.get(), q);
      OXML_BENCH_OK(r);
      results += r->size();
    }
    benchmark::DoNotOptimize(results);
  }
  OXML_BENCH_CHECK(f.db->stats()->statements_timed_out == 0);
  OXML_BENCH_CHECK(f.db->stats()->mem_budget_rejections == 0);
  state.SetLabel(std::string(OrderEncodingToString(enc)) +
                 (governed ? "/governed" : "/ungoverned"));
}

// Arg: K = number of consecutive injected transient failures on the next
// write-class I/O. Each iteration arms the burst and commits one insert;
// the latency steps trace the bounded exponential backoff (64us << n).
void BM_TransientRetryLadder(benchmark::State& state) {
  uint64_t burst = static_cast<uint64_t>(state.range(0));
  std::string path = "/tmp/oxml_bench_gov_" + std::to_string(::getpid()) +
                     "_" + std::to_string(burst) + ".db";
  auto plan = std::make_shared<FaultPlan>();
  plan->Arm(0, FaultPlan::Mode::kNone);
  DatabaseOptions opts;
  opts.file_path = path;
  opts.fault_plan = plan;
  auto dbr = Database::Open(opts);
  OXML_BENCH_CHECK(dbr.ok());
  auto& db = *dbr;
  OXML_BENCH_OK(db->Execute("CREATE TABLE ledger (id INT, note TEXT)"));

  int64_t id = 0;
  for (auto _ : state) {
    if (burst > 0) {
      plan->ArmTransient(1, burst);
    } else {
      plan->Arm(0, FaultPlan::Mode::kNone);
    }
    auto r = db->Execute("INSERT INTO ledger VALUES (" +
                         std::to_string(id++) + ", 'entry')");
    OXML_BENCH_OK(r);
  }
  state.counters["io_retries"] =
      static_cast<double>(db->stats()->io_retries);
  OXML_BENCH_CHECK(db->Close().ok());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  state.SetLabel("burst=" + std::to_string(burst));
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_QrWorkload)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(oxml::bench::BM_TransientRetryLadder)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMicrosecond);

OXML_BENCH_MAIN();
