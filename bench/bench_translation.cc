// Ablation — whole-path SQL translation vs. step-by-step driver.
//
// The paper translates ordered XPath into plain SQL; this bench compares
// that single-statement strategy against the library's per-step driver on
// queries both modes support. Expected shape: the single statement wins
// when the planner can turn every step into an indexed join (Global/Local
// child paths); it loses when the axis join is not indexable (the Dewey
// prefix range join runs as a nested-loop join), which is why mid-2000s
// systems grew special structural-join operators.

#include <benchmark/benchmark.h>

#include "src/core/sql_translator.h"

#include "bench/bench_util.h"

namespace oxml {
namespace bench {
namespace {

StoreFixture& FixtureFor(OrderEncoding enc) {
  static auto* fixtures = new std::map<OrderEncoding, StoreFixture>();
  auto it = fixtures->find(enc);
  if (it == fixtures->end()) {
    // Smoke keeps >= 55 sections so the s50 attribute filter still hits.
    auto doc = NewsDoc(static_cast<int>(SmokeScaled(100, 55)),
                       static_cast<int>(SmokeScaled(15, 3)));
    it = fixtures->emplace(enc, MakeLoadedStore(enc, *doc)).first;
  }
  return it->second;
}

struct Query {
  const char* id;
  const char* xpath;
};

const Query kQueries[] = {
    {"child_path", "/nitf/body/section/title"},
    {"attr_filter", "/nitf/body/section[@id = 's50']/title"},
    {"value_filter", "/nitf/body/section/para[. != 'x']"},
};

void BM_DriverMode(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  const Query& q = kQueries[state.range(1)];
  StoreFixture& f = FixtureFor(enc);
  size_t results = 0;
  for (auto _ : state) {
    auto r = EvaluateXPath(f.store.get(), q.xpath);
    OXML_BENCH_OK(r);
    results = r->size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  ReportExecStats(state, f.db.get());
  state.SetLabel(std::string(OrderEncodingToString(enc)) + "/driver/" +
                 q.id);
}

void BM_TranslationMode(benchmark::State& state) {
  OrderEncoding enc = EncodingFromIndex(state.range(0));
  const Query& q = kQueries[state.range(1)];
  StoreFixture& f = FixtureFor(enc);
  size_t results = 0;
  for (auto _ : state) {
    auto r = EvaluateXPathViaSql(f.store.get(), q.xpath);
    OXML_BENCH_OK(r);
    results = r->size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  ReportExecStats(state, f.db.get());
  state.SetLabel(std::string(OrderEncodingToString(enc)) + "/one-sql/" +
                 q.id);
}

}  // namespace
}  // namespace bench
}  // namespace oxml

BENCHMARK(oxml::bench::BM_DriverMode)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(oxml::bench::BM_TranslationMode)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

OXML_BENCH_MAIN();
